//! The discrete-event pipeline execution engine.
//!
//! Simulates one training iteration of a strategy: every stage replica is a
//! device executing its task order (from `gp-sched`) in order, non
//! preemptively; activations/gradients hop between stages over the cluster
//! links; data-parallel stages allreduce their gradients at the end of the
//! iteration. Because per-device task orders are fixed and dependencies
//! point backwards in each queue, makespan computation reduces to a
//! longest-path relaxation over the task DAG — no global event queue is
//! needed, and the result is deterministic.
//!
//! Modeling notes (see DESIGN.md):
//!
//! * replica `r` of a stage with `d` replicas processes micro-batches
//!   `mb % d == r`, matching the planner's memory accounting;
//! * links are delay-only (no contention); same-device transfers are free;
//! * activation memory is charged at forward completion and released at
//!   backward completion, plus static parameter/optimizer state.

use crate::report::{SimError, SimReport, TaskSpan};
use gp_cluster::{Cluster, DeviceId};
use gp_cost::{CostModel, Pass};
use gp_ir::Graph;
use gp_sched::{covering_micro_batches, PipelineSchedule, StageGraph, StageId};

/// One task instance placed on a device queue.
#[derive(Debug, Clone, Copy)]
struct QueuedTask {
    stage: StageId,
    mb: u32,
    pass: Pass,
    duration: f64,
}

/// Dense index for `(stage, mb, pass)` completion lookups.
struct TaskIndex {
    offsets: Vec<usize>,
    total: usize,
}

impl TaskIndex {
    fn new(sg: &StageGraph) -> TaskIndex {
        let mut offsets = Vec::with_capacity(sg.len() + 1);
        let mut total = 0usize;
        for s in sg.stages() {
            offsets.push(total);
            total += 2 * s.num_micro_batches(sg.mini_batch()) as usize;
        }
        offsets.push(total);
        TaskIndex { offsets, total }
    }

    fn index(&self, stage: StageId, mb: u32, pass: Pass) -> usize {
        let p = match pass {
            Pass::Forward => 0,
            Pass::Backward => 1,
        };
        self.offsets[stage.index()] + 2 * mb as usize + p
    }
}

/// Simulates one synchronous training iteration of a strategy.
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] when the task orders are mutually
/// inconsistent (e.g. a hand-crafted schedule with insufficient warm-up),
/// and [`SimError::MissingSchedule`] when the schedule does not cover every
/// stage.
pub fn simulate(
    graph: &Graph,
    cluster: &Cluster,
    sg: &StageGraph,
    schedule: &PipelineSchedule,
) -> Result<SimReport, SimError> {
    if schedule.per_stage.len() != sg.len() {
        return Err(SimError::MissingSchedule {
            stages: sg.len(),
            schedules: schedule.per_stage.len(),
        });
    }
    let cost = CostModel::new(cluster);
    let n_dev = cluster.device_count();
    let mini_batch = sg.mini_batch();

    // Per-stage aggregates.
    let mut fwd_dur = vec![0.0f64; sg.len()];
    let mut bwd_dur = vec![0.0f64; sg.len()];
    let mut act_ps = vec![0u64; sg.len()];
    let mut param_bytes = vec![0u64; sg.len()];
    for s in sg.stages() {
        fwd_dur[s.id.index()] = cost.stage_time(graph, &s.ops, s.micro_batch, Pass::Forward);
        bwd_dur[s.id.index()] = cost.stage_time(graph, &s.ops, s.micro_batch, Pass::Backward);
        act_ps[s.id.index()] = cost.stage_activation_bytes_per_sample(graph, &s.ops);
        param_bytes[s.id.index()] = cost.stage_param_bytes(graph, &s.ops);
    }
    // Transfer payload (bytes/sample) per stage edge.
    let mut edge_bytes: Vec<Vec<(StageId, u64)>> = vec![Vec::new(); sg.len()];
    for s in sg.stages() {
        for &succ in sg.succs(s.id) {
            let bytes = cost.crossing_bytes_per_sample(graph, &s.ops, &sg.stage(succ).ops);
            edge_bytes[s.id.index()].push((succ, bytes));
        }
    }
    let edge_payload = |from: StageId, to: StageId| -> u64 {
        edge_bytes[from.index()]
            .iter()
            .find(|(s, _)| *s == to)
            .map(|&(_, b)| b)
            .unwrap_or(0)
    };

    // Device queues: replica r of a stage runs micro-batches mb % d == r.
    let mut queues: Vec<Vec<QueuedTask>> = vec![Vec::new(); n_dev];
    for s in sg.stages() {
        let d = s.dp_degree() as u32;
        let devs: Vec<DeviceId> = s.devices.iter().collect();
        for task in &schedule.stage(s.id).tasks {
            let dev = devs[(task.mb % d) as usize];
            let duration = match task.pass {
                Pass::Forward => fwd_dur[s.id.index()],
                Pass::Backward => bwd_dur[s.id.index()],
            };
            queues[dev.index()].push(QueuedTask {
                stage: s.id,
                mb: task.mb,
                pass: task.pass,
                duration,
            });
        }
    }

    // The device hosting (stage, mb).
    let replica_device = |stage: StageId, mb: u32| -> DeviceId {
        let s = sg.stage(stage);
        let d = s.dp_degree() as u32;
        s.devices.iter().nth((mb % d) as usize).expect("mb % d < d")
    };

    let idx = TaskIndex::new(sg);
    let mut completion = vec![f64::NAN; idx.total];
    let mut start_time = vec![f64::NAN; idx.total];
    let mut scheduled = vec![false; idx.total];
    let mut head = vec![0usize; n_dev];
    let mut busy_until = vec![0.0f64; n_dev];
    let mut busy_total = vec![0.0f64; n_dev];
    let mut remaining: usize = queues.iter().map(Vec::len).sum();
    let total_tasks = remaining;

    // Longest-path relaxation: keep scheduling any device whose head task
    // has all dependencies scheduled.
    loop {
        let mut progress = false;
        for dev in 0..n_dev {
            'queue: while head[dev] < queues[dev].len() {
                let t = queues[dev][head[dev]];
                let me = replica_device(t.stage, t.mb);
                debug_assert_eq!(me.index(), dev);
                let mut ready = 0.0f64;
                let mut consider = |dep: usize, bytes: u64, from: DeviceId, to: DeviceId| {
                    if !scheduled[dep] {
                        return false;
                    }
                    let mut t_ready = completion[dep];
                    if bytes > 0 && from != to {
                        t_ready += cluster.link(from, to).transfer_time(bytes);
                    }
                    ready = ready.max(t_ready);
                    true
                };
                match t.pass {
                    Pass::Forward => {
                        for &p in sg.preds(t.stage) {
                            let bp = sg.stage(p).micro_batch;
                            let bytes_ps = edge_payload(p, t.stage);
                            let b_me = sg.stage(t.stage).micro_batch;
                            for mb_p in covering_micro_batches(bp, b_me, t.mb) {
                                let dep = idx.index(p, mb_p, Pass::Forward);
                                let from = replica_device(p, mb_p);
                                if !consider(dep, bytes_ps * b_me, from, me) {
                                    break 'queue;
                                }
                            }
                        }
                    }
                    Pass::Backward => {
                        // Own forward pass.
                        let own = idx.index(t.stage, t.mb, Pass::Forward);
                        if !consider(own, 0, me, me) {
                            break 'queue;
                        }
                        for &s in sg.succs(t.stage) {
                            let bs = sg.stage(s).micro_batch;
                            let bytes_ps = edge_payload(t.stage, s);
                            let b_me = sg.stage(t.stage).micro_batch;
                            for mb_s in covering_micro_batches(bs, b_me, t.mb) {
                                let dep = idx.index(s, mb_s, Pass::Backward);
                                let from = replica_device(s, mb_s);
                                if !consider(dep, bytes_ps * b_me, from, me) {
                                    break 'queue;
                                }
                            }
                        }
                    }
                }
                let start = busy_until[dev].max(ready);
                let end = start + t.duration;
                let ti = idx.index(t.stage, t.mb, t.pass);
                completion[ti] = end;
                start_time[ti] = start;
                scheduled[ti] = true;
                busy_until[dev] = end;
                busy_total[dev] += t.duration;
                head[dev] += 1;
                remaining -= 1;
                progress = true;
            }
        }
        if remaining == 0 {
            break;
        }
        if !progress {
            return Err(SimError::Deadlock {
                completed: total_tasks - remaining,
                total: total_tasks,
            });
        }
    }

    // Gradient allreduce per data-parallel stage, after its last backward.
    let mut device_end = busy_until.clone();
    for s in sg.stages() {
        let ar = cost.allreduce_time(param_bytes[s.id.index()], &s.devices);
        if ar > 0.0 {
            let stage_last = s
                .devices
                .iter()
                .map(|d| busy_until[d.index()])
                .fold(0.0f64, f64::max);
            for d in s.devices.iter() {
                device_end[d.index()] = device_end[d.index()].max(stage_last + ar);
                busy_total[d.index()] += ar;
            }
        }
    }
    let iteration_time = device_end.iter().copied().fold(0.0f64, f64::max);

    // Memory: static states + activation stash between fw and bw.
    let mut peak_memory = vec![0u64; n_dev];
    let mut static_mem = vec![0u64; n_dev];
    for s in sg.stages() {
        let stat =
            param_bytes[s.id.index()] / gp_ir::BYTES_PER_ELEMENT * gp_cost::BYTES_PER_PARAM_STATE;
        for d in s.devices.iter() {
            static_mem[d.index()] += stat;
        }
    }
    // Events: (+bytes at fw end, -bytes at bw end), walked in time order.
    let mut events: Vec<(f64, i64, usize)> = Vec::new();
    for s in sg.stages() {
        let m = s.num_micro_batches(mini_batch) as u32;
        let bytes = (act_ps[s.id.index()] * s.micro_batch) as i64;
        for mb in 0..m {
            let dev = replica_device(s.id, mb).index();
            events.push((completion[idx.index(s.id, mb, Pass::Forward)], bytes, dev));
            events.push((completion[idx.index(s.id, mb, Pass::Backward)], -bytes, dev));
        }
    }
    // Total order: releases before charges at equal times (so peaks are not
    // overstated), then by device — independent of construction order, so
    // reports byte-compare across runs and cached-plan replays.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut cur = static_mem.clone();
    peak_memory[..n_dev].copy_from_slice(&cur[..n_dev]);
    for (_, delta, dev) in events {
        cur[dev] = (cur[dev] as i64 + delta) as u64;
        peak_memory[dev] = peak_memory[dev].max(cur[dev]);
    }

    // Timeline spans for rendering.
    let mut timeline = Vec::with_capacity(total_tasks);
    for s in sg.stages() {
        let m = s.num_micro_batches(mini_batch) as u32;
        for mb in 0..m {
            for pass in [Pass::Forward, Pass::Backward] {
                let ti = idx.index(s.id, mb, pass);
                timeline.push(TaskSpan {
                    device: replica_device(s.id, mb),
                    stage: s.id,
                    mb,
                    pass,
                    start: start_time[ti],
                    end: completion[ti],
                });
            }
        }
    }
    // Sort by a total key — ties on start time are broken by (device,
    // stage, mb, pass) rather than construction order, so the timeline (and
    // everything rendered from it, e.g. Gantt charts) is byte-for-byte
    // deterministic for a given strategy.
    timeline.sort_by(|a, b| {
        let ka = (a.device, a.stage, a.mb, a.pass as u8);
        let kb = (b.device, b.stage, b.mb, b.pass as u8);
        a.start.total_cmp(&b.start).then(ka.cmp(&kb))
    });

    // Warm-up: the moment every stage has begun working.
    let mut first_start = vec![f64::INFINITY; sg.len()];
    for span in &timeline {
        let s = span.stage.index();
        first_start[s] = first_start[s].min(span.start);
    }
    let warmup_time = first_start.iter().copied().fold(0.0f64, f64::max);

    let busy_sum: f64 = busy_total.iter().sum();
    let utilization = if iteration_time > 0.0 {
        busy_sum / (iteration_time * n_dev as f64)
    } else {
        0.0
    };

    Ok(SimReport {
        iteration_time,
        throughput: mini_batch as f64 / iteration_time,
        utilization,
        bubble_fraction: 1.0 - utilization,
        warmup_time,
        per_device_busy: busy_total,
        peak_memory_bytes: peak_memory,
        timeline,
        mini_batch,
    })
}
