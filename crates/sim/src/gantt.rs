//! ASCII Gantt rendering of simulated pipeline schedules (Figure 8 style).

use crate::report::SimReport;
use gp_cost::Pass;
use gp_sched::StageGraph;

/// Device rows rendered before [`render_gantt`] elides the rest. One row
/// per device is legible for the paper's 8–64 GPU strategies; at the
/// simulator's 512+ device scale an unbounded chart is wallpaper, so
/// everything past this many rows collapses into one elision note.
pub(crate) const MAX_GANTT_DEVICES: usize = 64;

/// Renders the timeline as one row per device.
///
/// Forward passes print the micro-batch as `1-9` then `A-Z`; backward
/// passes print `a-z`. Idle time prints `.`. The horizontal axis is the
/// iteration, sampled into `width` columns. Charts stop after 64 rows
/// (`MAX_GANTT_DEVICES`) with an explicit `... elided` note instead of
/// emitting output proportional to the device count.
///
/// # Examples
///
/// ```text
/// gpu0 | 1234a1b2c3d4........
/// gpu1 | .1234a1b2c3d4.......
/// ```
pub fn render_gantt(report: &SimReport, sg: &StageGraph, width: usize) -> String {
    let width = width.max(10);
    let n_dev = report.peak_memory_bytes.len();
    let shown = n_dev.min(MAX_GANTT_DEVICES);
    let span = report.iteration_time.max(f64::MIN_POSITIVE);
    let mut rows = vec![vec!['.'; width]; shown];
    for t in &report.timeline {
        if t.device.index() >= shown {
            continue;
        }
        let c0 = ((t.start / span) * width as f64).floor() as usize;
        let c1 = ((t.end / span) * width as f64).ceil() as usize;
        let ch = glyph(t.pass, t.mb);
        for cell in rows[t.device.index()]
            .iter_mut()
            .take(c1.min(width))
            .skip(c0.min(width.saturating_sub(1)))
        {
            *cell = ch;
        }
    }
    let mut out = String::new();
    for (d, row) in rows.iter().enumerate() {
        let stage = sg
            .stages()
            .find(|s| s.devices.iter().any(|dev| dev.index() == d))
            .map(|s| s.id.to_string())
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!("gpu{d:<2} {stage:<4}|"));
        out.extend(row.iter());
        out.push('\n');
    }
    if n_dev > shown {
        out.push_str(&format!(
            "... {} more devices elided (showing {shown} of {n_dev})\n",
            n_dev - shown
        ));
    }
    out.push_str(&format!(
        "iteration {:.3} ms, warm-up {:.3} ms, bubble {:.1}%  (F: 1-9/A-Z, B: a-z, idle: .)\n",
        report.iteration_time * 1e3,
        report.warmup_time * 1e3,
        report.bubble_fraction * 100.0
    ));
    out
}

fn glyph(pass: Pass, mb: u32) -> char {
    match pass {
        Pass::Forward => {
            let m = mb % 35;
            if m < 9 {
                (b'1' + m as u8) as char
            } else {
                (b'A' + (m - 9) as u8) as char
            }
        }
        Pass::Backward => (b'a' + (mb % 26) as u8) as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyph_cycles() {
        assert_eq!(glyph(Pass::Forward, 0), '1');
        assert_eq!(glyph(Pass::Forward, 8), '9');
        assert_eq!(glyph(Pass::Forward, 9), 'A');
        assert_eq!(glyph(Pass::Backward, 0), 'a');
        assert_eq!(glyph(Pass::Backward, 25), 'z');
    }
}
