//! # gp-sim — discrete-event simulator for pipeline-parallel training
//!
//! The GraphPipe paper executes every planner's strategy on the same
//! distributed runtime (FlexFlow on Summit) and reports training
//! throughput. This crate is that runtime's timing substitute (the
//! modeling contract is DESIGN.md §"The modeling contract"): a
//! deterministic discrete-event simulator that executes a strategy's
//! per-stage task orders on a modeled cluster and reports iteration time,
//! throughput, utilization, warm-up length, and per-device peak memory —
//! the observables behind Figures 6–9.
//!
//! The engine is arena-backed and scales to 512+ simulated devices and
//! 10k+ micro-batches: task state lives in flat columns keyed by
//! [`gp_sched::TaskIndex`], device queues are slices of one slab,
//! dependency probes walk precomputed CSR rows, and activation memory is
//! a running per-device watermark (the layout is documented on the
//! private `engine` module; the perf harness is
//! `crates/bench/src/bin/sim_profile.rs`).
//! [`SimOptions::parallelism`] enables a deterministic parallel
//! relaxation with byte-identical reports.
//!
//! # Examples
//!
//! ```
//! use gp_cluster::Cluster;
//! use gp_ir::zoo::{self, CandleUnoConfig};
//! use gp_partition::{GraphPipePlanner, Planner};
//! use gp_sim::SimOptions;
//!
//! let model = zoo::candle_uno(&CandleUnoConfig::default());
//! let cluster = Cluster::summit_like(8);
//! let plan = GraphPipePlanner::new().plan(&model, &cluster, 1024)?;
//! let report = gp_sim::simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule)?;
//! assert!(report.throughput > 0.0);
//! // The parallel engine produces the byte-identical report.
//! let par = gp_sim::simulate_with(
//!     model.graph(), &cluster, &plan.stage_graph, &plan.schedule,
//!     &SimOptions::default().with_parallelism(4),
//! )?;
//! assert_eq!(report.fingerprint(), par.fingerprint());
//! println!("{}", gp_sim::render_gantt(&report, &plan.stage_graph, 80));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod gantt;
mod report;
mod trace;

pub use engine::{simulate, simulate_traced, simulate_with, SimOptions};
pub use gantt::render_gantt;
pub use report::{SimError, SimReport, TaskSpan};
pub use trace::{report_into_perfetto, report_to_perfetto};
