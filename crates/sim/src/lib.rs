//! # gp-sim — discrete-event simulator for pipeline-parallel training
//!
//! The GraphPipe paper executes every planner's strategy on the same
//! distributed runtime (FlexFlow on Summit) and reports training
//! throughput. This crate is that runtime's timing substitute (see
//! DESIGN.md): a deterministic discrete-event simulator that executes a
//! strategy's per-stage task orders on a modeled cluster and reports
//! iteration time, throughput, utilization, warm-up length, and per-device
//! peak memory — the observables behind Figures 6–9.
//!
//! # Examples
//!
//! ```
//! use gp_cluster::Cluster;
//! use gp_ir::zoo::{self, CandleUnoConfig};
//! use gp_partition::{GraphPipePlanner, Planner};
//!
//! let model = zoo::candle_uno(&CandleUnoConfig::default());
//! let cluster = Cluster::summit_like(8);
//! let plan = GraphPipePlanner::new().plan(&model, &cluster, 1024)?;
//! let report = gp_sim::simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule)?;
//! assert!(report.throughput > 0.0);
//! println!("{}", gp_sim::render_gantt(&report, &plan.stage_graph, 80));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod gantt;
mod report;

pub use engine::simulate;
pub use gantt::render_gantt;
pub use report::{SimError, SimReport, TaskSpan};
