//! Simulation results and errors.
//!
//! gp-lint: deterministic — this module's outputs feed plan
//! fingerprints or the artifact codec; `cargo xtask lint` scans it for
//! nondeterminism hazards (DESIGN.md §"Determinism lint").

use gp_cluster::DeviceId;
use gp_cost::Pass;
use gp_sched::StageId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One executed task instance on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// The device (replica) that ran the task.
    pub device: DeviceId,
    /// The stage the task belongs to.
    pub stage: StageId,
    /// Stage-local micro-batch index.
    pub mb: u32,
    /// Forward or backward.
    pub pass: Pass,
    /// Start time, seconds from iteration start.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// Metrics of one simulated training iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Makespan of the iteration (including gradient allreduce), seconds.
    pub iteration_time: f64,
    /// Training throughput in samples per second (`B / iteration_time`).
    pub throughput: f64,
    /// Mean fraction of time devices spent computing.
    pub utilization: f64,
    /// `1 - utilization`: the pipeline-bubble share the paper's warm-up /
    /// cool-down analysis is about.
    pub bubble_fraction: f64,
    /// Time until every stage has started working (the warm-up phase).
    pub warmup_time: f64,
    /// Busy seconds per device.
    pub per_device_busy: Vec<f64>,
    /// Peak memory per device in bytes (parameters + optimizer states +
    /// stashed activations).
    pub peak_memory_bytes: Vec<u64>,
    /// All executed tasks, sorted by start time.
    pub timeline: Vec<TaskSpan>,
    /// The mini-batch size the iteration processed.
    pub mini_batch: u64,
}

impl SimReport {
    /// The highest peak memory across devices.
    pub fn max_peak_memory(&self) -> u64 {
        self.peak_memory_bytes.iter().copied().max().unwrap_or(0)
    }

    /// A 64-bit FNV-1a digest over every field of the report, bit-exact:
    /// scalar metrics enter as their IEEE-754 bit patterns and the whole
    /// timeline is folded span by span. Two reports have equal fingerprints
    /// iff they are byte-identical (modulo hash collisions), which makes
    /// this the drift detector for golden tests and the `sim_profile`
    /// smoke: any behaviour change in the engine — timing, memory
    /// accounting, span ordering — moves the fingerprint.
    ///
    /// # Examples
    ///
    /// ```
    /// use gp_cluster::Cluster;
    /// use gp_ir::zoo::{self, MmtConfig};
    /// use gp_partition::{GraphPipePlanner, Planner};
    ///
    /// let model = zoo::mmt(&MmtConfig::tiny());
    /// let cluster = Cluster::summit_like(4);
    /// let plan = GraphPipePlanner::new().plan(&model, &cluster, 32)?;
    /// let a = gp_sim::simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule)?;
    /// let b = gp_sim::simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule)?;
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut mix = |w: u64| {
            h ^= w;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.mini_batch);
        mix(self.per_device_busy.len() as u64);
        mix(self.iteration_time.to_bits());
        mix(self.throughput.to_bits());
        mix(self.utilization.to_bits());
        mix(self.bubble_fraction.to_bits());
        mix(self.warmup_time.to_bits());
        for &busy in &self.per_device_busy {
            mix(busy.to_bits());
        }
        for &peak in &self.peak_memory_bytes {
            mix(peak);
        }
        mix(self.timeline.len() as u64);
        for span in &self.timeline {
            mix(span.device.0 as u64);
            mix(span.stage.0 as u64);
            mix(span.mb as u64);
            mix(span.pass as u64);
            mix(span.start.to_bits());
            mix(span.end.to_bits());
        }
        h
    }
}

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The task orders are mutually inconsistent: no device can make
    /// progress although tasks remain.
    Deadlock {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks in the iteration.
        total: usize,
    },
    /// The schedule does not provide a task order for every stage.
    MissingSchedule {
        /// Stages in the strategy.
        stages: usize,
        /// Task orders provided.
        schedules: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { completed, total } => write!(
                f,
                "pipeline deadlocked after {completed}/{total} tasks; \
                 the schedule violates cross-stage dependencies"
            ),
            SimError::MissingSchedule { stages, schedules } => write!(
                f,
                "schedule covers {schedules} stages but the strategy has {stages}"
            ),
        }
    }
}

impl std::error::Error for SimError {}
