//! `SimReport` → Chrome/Perfetto trace conversion.
//!
//! The simulator's timeline is already a per-device task schedule, which
//! is exactly what a trace viewer renders: each [`TaskSpan`] becomes one
//! complete (`X`) slice on a per-device lane under the "simulated
//! cluster" process (pid 2), so a simulated 512-device schedule opens
//! directly in `ui.perfetto.dev`. Live telemetry spans, when present in
//! the same sink, appear as a separate process (pid 1) — one file shows
//! the planner/session timing next to the schedule it produced.

use crate::report::SimReport;
use gp_cost::Pass;
use gp_obs::{PerfettoSink, TraceSink as _, PERFETTO_PID_SIM};

/// Simulated seconds, rendered as trace nanoseconds.
fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 || !secs.is_finite() {
        return 0;
    }
    (secs * 1e9).round() as u64
}

/// Add a report's timeline to an existing sink (pid 2, one lane per
/// device), e.g. alongside live spans exported from a
/// [`Telemetry`](gp_obs::Telemetry).
pub fn report_into_perfetto(sink: &mut PerfettoSink, report: &SimReport) {
    sink.name_process(PERFETTO_PID_SIM, "simulated cluster");
    for d in 0..report.per_device_busy.len() {
        sink.name_thread(PERFETTO_PID_SIM, d as u32, &format!("device {d}"));
    }
    for span in &report.timeline {
        let start = secs_to_ns(span.start);
        let dur = secs_to_ns(span.end).saturating_sub(start);
        let (tag, cat) = match span.pass {
            Pass::Forward => ('F', "forward"),
            Pass::Backward => ('B', "backward"),
        };
        sink.add_slice(
            PERFETTO_PID_SIM,
            span.device.index() as u32,
            &format!("{tag} s{} mb{}", span.stage.index(), span.mb),
            cat,
            start,
            dur,
        );
    }
}

/// Render a report's timeline as a standalone Perfetto trace JSON.
pub fn report_to_perfetto(report: &SimReport) -> String {
    let mut sink = PerfettoSink::new();
    report_into_perfetto(&mut sink, report);
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_to_nanos() {
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(1.5e-3), 1_500_000);
        assert_eq!(secs_to_ns(f64::NAN), 0);
    }

    #[test]
    fn report_renders_device_lanes() {
        use gp_cluster::Cluster;
        use gp_ir::zoo::{self, MmtConfig};
        use gp_partition::{GraphPipePlanner, Planner};

        let model = zoo::mmt(&MmtConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        let report = crate::simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule)
            .expect("simulation succeeds");
        let trace = report_to_perfetto(&report);
        assert!(trace.contains("simulated cluster"));
        assert!(trace.contains("\"ph\":\"X\""));
        assert_eq!(
            trace.matches("\"ph\":\"X\"").count(),
            report.timeline.len(),
            "one slice per timeline task"
        );
        // Converting twice yields identical bytes (deterministic export).
        assert_eq!(trace, report_to_perfetto(&report));
    }
}
