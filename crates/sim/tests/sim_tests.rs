//! Integration tests for the discrete-event simulator: conservation laws,
//! schedule semantics, deadlock detection, and the paper's headline
//! GPP-beats-SPP behaviour.

use gp_baselines::PipeDreamPlanner;
use gp_cluster::{Cluster, DeviceRange};
use gp_cost::{CostModel, Pass};
use gp_ir::zoo::{self, CandleUnoConfig, MmtConfig};
use gp_partition::{GraphPipePlanner, Plan, Planner};
use gp_sched::{
    assign_in_flight, schedule_tasks, PipelineSchedule, Stage, StageGraph, StageId, StageSchedule,
};
use gp_sim::{render_gantt, simulate, simulate_with, SimError, SimOptions};

/// Builds an n-stage 1F1B chain over an MLP with one device per stage.
fn chain_setup(
    n: usize,
    micro_batch: u64,
    mini_batch: u64,
) -> (gp_ir::SpModel, Cluster, StageGraph) {
    let model = zoo::mlp_chain(2 * n, 64);
    let cluster = Cluster::tiny_test(n);
    let ops = model.linearize();
    let per = ops.len().div_ceil(n);
    let stages: Vec<Stage> = ops
        .chunks(per)
        .enumerate()
        .map(|(i, chunk)| Stage {
            id: StageId(i as u32),
            ops: chunk.to_vec(),
            devices: DeviceRange::new(i as u32, 1),
            micro_batch,
            kfkb: 1,
        })
        .collect();
    let sg = StageGraph::new(model.graph(), &cluster, stages, mini_batch).unwrap();
    (model, cluster, sg)
}

#[test]
fn single_stage_runs_back_to_back() {
    let (model, cluster, sg) = chain_setup(1, 2, 8);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let report = simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    // One device, no dependencies: busy the whole time.
    assert!(report.utilization > 0.999, "{}", report.utilization);
    let cost = CostModel::new(&cluster);
    let stage = sg.stage(StageId(0));
    let per_mb = cost.stage_time(model.graph(), &stage.ops, 2, Pass::Forward)
        + cost.stage_time(model.graph(), &stage.ops, 2, Pass::Backward);
    let expect = per_mb * 4.0; // 4 micro-batches
    assert!((report.iteration_time - expect).abs() / expect < 1e-9);
    assert!((report.throughput - 8.0 / expect).abs() / report.throughput < 1e-9);
}

#[test]
fn chain_pipeline_has_warmup_and_bubbles() {
    let (model, cluster, sg) = chain_setup(4, 2, 32);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let report = simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    assert!(report.warmup_time > 0.0);
    assert!(report.bubble_fraction > 0.0 && report.bubble_fraction < 0.5);
    // All tasks appear on the timeline: 4 stages x 16 micro-batches x 2.
    assert_eq!(report.timeline.len(), 4 * 16 * 2);
}

#[test]
fn more_micro_batches_reduce_bubble_fraction() {
    // Classic pipelining: with per-micro-batch work held constant, more
    // micro-batches amortize the fixed warm-up/cool-down ramps.
    let (model, cluster, sg8) = chain_setup(4, 2, 16);
    let schedule8 = schedule_tasks(&sg8, &assign_in_flight(&sg8));
    let r8 = simulate(model.graph(), &cluster, &sg8, &schedule8).unwrap();
    let (_, _, sg32) = chain_setup(4, 2, 64);
    let schedule32 = schedule_tasks(&sg32, &assign_in_flight(&sg32));
    let r32 = simulate(model.graph(), &cluster, &sg32, &schedule32).unwrap();
    assert!(r32.bubble_fraction < r8.bubble_fraction);
}

#[test]
fn timeline_respects_stage_dependencies() {
    let (model, cluster, sg) = chain_setup(3, 2, 16);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let report = simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    let find = |stage: u32, mb: u32, pass: Pass| {
        report
            .timeline
            .iter()
            .find(|t| t.stage == StageId(stage) && t.mb == mb && t.pass == pass)
            .copied()
            .unwrap()
    };
    for mb in 0..8 {
        // Forward flows down the chain, backward flows up.
        assert!(find(0, mb, Pass::Forward).end <= find(1, mb, Pass::Forward).start + 1e-12);
        assert!(find(1, mb, Pass::Forward).end <= find(2, mb, Pass::Forward).start + 1e-12);
        assert!(find(2, mb, Pass::Backward).end <= find(1, mb, Pass::Backward).start + 1e-12);
        // C4 within a stage.
        assert!(find(1, mb, Pass::Forward).end <= find(1, mb, Pass::Backward).start + 1e-12);
    }
}

#[test]
fn deadlock_from_insufficient_warmup_is_detected() {
    let (model, cluster, sg) = chain_setup(2, 2, 8);
    // Stage 0 warms up only one micro-batch (needs two), stage 1 warms up
    // two (needs one): B1@S0 waits for B1@S1 which sits behind F2@S1,
    // which waits for F2@S0 queued behind B1@S0 — a cycle.
    let schedule = PipelineSchedule {
        per_stage: vec![
            StageSchedule::kfkb(StageId(0), 4, 1, 1),
            StageSchedule::kfkb(StageId(1), 4, 2, 1),
        ],
    };
    let err = simulate(model.graph(), &cluster, &sg, &schedule).unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "{err:?}");
}

#[test]
fn missing_schedule_is_reported() {
    let (model, cluster, sg) = chain_setup(2, 2, 8);
    let schedule = PipelineSchedule {
        per_stage: vec![StageSchedule::kfkb(StageId(0), 4, 2, 1)],
    };
    let err = simulate(model.graph(), &cluster, &sg, &schedule).unwrap_err();
    assert_eq!(
        err,
        SimError::MissingSchedule {
            stages: 2,
            schedules: 1
        }
    );
}

#[test]
fn simulated_memory_matches_planner_prediction() {
    let model = zoo::candle_uno(&CandleUnoConfig::default());
    let cluster = Cluster::summit_like(8);
    let plan = GraphPipePlanner::new()
        .plan(&model, &cluster, 1024)
        .unwrap();
    let report = simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule).unwrap();
    // The simulator's peak per-device memory never exceeds the planner's
    // worst-stage estimate (the schedule bounds in-flight samples).
    assert!(
        report.max_peak_memory() <= plan.peak_memory_bytes,
        "sim {} > plan {}",
        report.max_peak_memory(),
        plan.peak_memory_bytes
    );
}

#[test]
fn in_flight_bound_is_tight_on_single_replica_chains() {
    let (model, cluster, sg) = chain_setup(3, 2, 16);
    let inflight = assign_in_flight(&sg);
    let schedule = schedule_tasks(&sg, &inflight);
    let report = simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    let cost = CostModel::new(&cluster);
    for s in sg.stages() {
        let act = cost.stage_activation_bytes_per_sample(model.graph(), &s.ops);
        let static_mem = cost.stage_param_bytes(model.graph(), &s.ops) / gp_ir::BYTES_PER_ELEMENT
            * gp_cost::BYTES_PER_PARAM_STATE;
        let predicted = static_mem + act * inflight.samples(s.id);
        let dev = s.devices.first().index();
        assert_eq!(
            report.peak_memory_bytes[dev], predicted,
            "stage {} memory",
            s.id
        );
    }
}

fn simulated_throughput(model: &gp_ir::SpModel, cluster: &Cluster, plan: &Plan) -> f64 {
    simulate(model.graph(), cluster, &plan.stage_graph, &plan.schedule)
        .unwrap()
        .throughput
}

#[test]
fn gpp_beats_spp_on_multi_branch_models() {
    // The headline result (Figure 6): on branchy models the GPP strategy's
    // shallower pipeline yields higher simulated throughput than the
    // sequential baseline.
    let model = zoo::candle_uno(&CandleUnoConfig::default());
    let cluster = Cluster::summit_like(8);
    let gpp = GraphPipePlanner::new()
        .plan(&model, &cluster, 8192)
        .unwrap();
    let spp = PipeDreamPlanner::new()
        .plan(&model, &cluster, 8192)
        .unwrap();
    let t_gpp = simulated_throughput(&model, &cluster, &gpp);
    let t_spp = simulated_throughput(&model, &cluster, &spp);
    assert!(
        t_gpp >= t_spp,
        "GraphPipe {t_gpp:.1} vs PipeDream {t_spp:.1} samples/s"
    );
}

#[test]
fn gpp_matches_spp_on_sequential_models() {
    // Appendix A.3: no branches, no GPP advantage — parity within a few
    // percent.
    let model = zoo::sequential_transformer(8, &MmtConfig::default());
    let cluster = Cluster::summit_like(4);
    let gpp = GraphPipePlanner::new().plan(&model, &cluster, 64).unwrap();
    let spp = PipeDreamPlanner::new().plan(&model, &cluster, 64).unwrap();
    let t_gpp = simulated_throughput(&model, &cluster, &gpp);
    let t_spp = simulated_throughput(&model, &cluster, &spp);
    let ratio = t_gpp / t_spp;
    assert!(
        (0.9..=1.15).contains(&ratio),
        "sequential parity broken: ratio {ratio:.3}"
    );
}

#[test]
fn gantt_renders_all_devices() {
    let (model, cluster, sg) = chain_setup(3, 2, 16);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let report = simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    let gantt = render_gantt(&report, &sg, 60);
    assert_eq!(gantt.lines().count(), 4); // 3 devices + footer
    assert!(gantt.contains("gpu0"));
    assert!(gantt.contains("bubble"));
}

#[test]
fn gantt_elides_rows_past_the_device_cap() {
    // A hand-built report with 100 devices: the chart stops at 64 rows
    // and says exactly what it dropped, instead of emitting one row per
    // simulated device.
    let (model, cluster, sg) = chain_setup(2, 2, 8);
    let schedule = schedule_tasks(&sg, &assign_in_flight(&sg));
    let mut report = simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    report.per_device_busy.resize(100, 0.0);
    report.peak_memory_bytes.resize(100, 0);
    let gantt = render_gantt(&report, &sg, 60);
    assert_eq!(gantt.lines().count(), 64 + 2); // rows + elision + footer
    assert!(gantt.contains("gpu63"));
    assert!(!gantt.contains("gpu64 "));
    assert!(gantt.contains("... 36 more devices elided (showing 64 of 100)"));
}

#[test]
fn parallel_mode_reports_are_byte_identical() {
    // The parallel relaxation must reproduce the sequential engine's
    // report bit for bit — same timeline floats, same memory watermarks,
    // same fingerprint — for any worker count (including more workers
    // than devices).
    let cells: Vec<(gp_ir::SpModel, usize, u64)> = vec![
        (zoo::mmt(&MmtConfig::tiny()), 4, 64),
        (zoo::candle_uno(&CandleUnoConfig::default()), 8, 1024),
        (zoo::dlrm(&gp_ir::zoo::DlrmConfig::default()), 8, 512),
    ];
    for (model, devices, mini_batch) in cells {
        let cluster = Cluster::summit_like(devices);
        let plan = GraphPipePlanner::new()
            .plan(&model, &cluster, mini_batch)
            .unwrap();
        let seq = simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule).unwrap();
        for workers in [2, 3, 7, 32] {
            let par = simulate_with(
                model.graph(),
                &cluster,
                &plan.stage_graph,
                &plan.schedule,
                &SimOptions::default().with_parallelism(workers),
            )
            .unwrap();
            assert_eq!(seq.fingerprint(), par.fingerprint(), "workers={workers}");
            assert_eq!(seq.timeline, par.timeline, "workers={workers}");
            assert_eq!(seq.peak_memory_bytes, par.peak_memory_bytes);
            assert_eq!(seq.per_device_busy, par.per_device_busy);
        }
    }
}

#[test]
fn parallel_mode_detects_the_same_deadlock() {
    // Deadlock detection must agree across engines: the schedulable
    // closure is unique, so the completed/total counts are too.
    let (model, cluster, sg) = chain_setup(2, 2, 8);
    let schedule = PipelineSchedule {
        per_stage: vec![
            StageSchedule::kfkb(StageId(0), 4, 1, 1),
            StageSchedule::kfkb(StageId(1), 4, 2, 1),
        ],
    };
    let seq = simulate(model.graph(), &cluster, &sg, &schedule).unwrap_err();
    let par = simulate_with(
        model.graph(),
        &cluster,
        &sg,
        &schedule,
        &SimOptions::default().with_parallelism(2),
    )
    .unwrap_err();
    assert_eq!(seq, par);
    assert!(matches!(seq, SimError::Deadlock { .. }));
}

#[test]
fn reports_are_byte_deterministic() {
    // Repeated simulations of the same strategy must produce identical
    // timelines and renderings — including tie-breaks between task spans
    // starting at the same instant on branch stages — so golden tests and
    // cached-plan replays can byte-compare.
    let model = zoo::candle_uno(&CandleUnoConfig::tiny());
    let cluster = Cluster::summit_like(4);
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
    let a = simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule).unwrap();
    let b = simulate(model.graph(), &cluster, &plan.stage_graph, &plan.schedule).unwrap();
    assert_eq!(format!("{:?}", a.timeline), format!("{:?}", b.timeline));
    assert_eq!(
        render_gantt(&a, &plan.stage_graph, 80),
        render_gantt(&b, &plan.stage_graph, 80)
    );
    // The timeline is ordered by the total key (start, device, stage, mb,
    // pass), not by construction order.
    for w in a.timeline.windows(2) {
        let ka = (w[0].device, w[0].stage, w[0].mb, w[0].pass as u8);
        let kb = (w[1].device, w[1].stage, w[1].mb, w[1].pass as u8);
        assert!(w[0].start < w[1].start || (w[0].start == w[1].start && ka <= kb));
    }
}
