//! # gp-tensor — minimal dense-tensor math with hand-written backwards
//!
//! The CPU numeric substrate for the GraphPipe runtime (`gp-exec`): a small
//! f32 [`Tensor`] plus forward/backward implementations of every operator
//! the model zoo uses. Backward passes are hand-derived and validated
//! against central finite differences in the test suite, so the runtime's
//! gradient-equivalence checks rest on verified math.
//!
//! # Examples
//!
//! ```
//! use gp_tensor::{ops, Tensor};
//!
//! let x = Tensor::new(vec![2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
//! let w = Tensor::ones(vec![3, 2]);
//! let y = ops::linear_fwd(&x, &w, None);
//! assert_eq!(y.shape(), &[2, 2]);
//! let (dx, dw, _db) = ops::linear_bwd(&x, &w, &Tensor::ones(vec![2, 2]));
//! assert_eq!(dx.shape(), x.shape());
//! assert_eq!(dw.shape(), w.shape());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ops;
mod tensor;

pub use tensor::Tensor;
