//! Forward and backward implementations of every DNN operator the model zoo
//! uses: linear, ReLU/GeLU, layer norm, softmax, multi-head attention,
//! embedding bags, concatenation, DLRM feature interaction, and an L2
//! training loss. All backwards are hand-derived and verified against
//! finite differences in the test suite.

use crate::tensor::Tensor;

/// `y = x @ w + b` applied to the innermost dimension; `x` is interpreted
/// as `[rows, in]` with `rows = numel / in`.
pub fn linear_fwd(x: &Tensor, w: &Tensor, b: Option<&Tensor>) -> Tensor {
    let (in_f, out_f) = (w.shape()[0], w.shape()[1]);
    let rows = x.rows_for(in_f);
    let x2 = x.reshape(vec![rows, in_f]);
    let mut y = x2.matmul(w);
    if let Some(b) = b {
        assert_eq!(b.numel(), out_f, "bias length mismatch");
        for r in 0..rows {
            for (c, &bv) in b.data().iter().enumerate() {
                y.data_mut()[r * out_f + c] += bv;
            }
        }
    }
    let mut shape = x.shape().to_vec();
    *shape.last_mut().expect("non-scalar") = out_f;
    y.reshape(shape)
}

/// Gradients of [`linear_fwd`]: returns `(dx, dw, db)`.
pub fn linear_bwd(x: &Tensor, w: &Tensor, dy: &Tensor) -> (Tensor, Tensor, Tensor) {
    let (in_f, out_f) = (w.shape()[0], w.shape()[1]);
    let rows = x.rows_for(in_f);
    let x2 = x.reshape(vec![rows, in_f]);
    let dy2 = dy.reshape(vec![rows, out_f]);
    let dx = dy2.matmul(&w.t()).reshape(x.shape().to_vec());
    let dw = x2.t().matmul(&dy2);
    let mut db = Tensor::zeros(vec![out_f]);
    for r in 0..rows {
        for c in 0..out_f {
            db.data_mut()[c] += dy2.data()[r * out_f + c];
        }
    }
    (dx, dw, db)
}

/// Rectified linear unit.
pub fn relu_fwd(x: &Tensor) -> Tensor {
    Tensor::new(
        x.shape().to_vec(),
        x.data().iter().map(|&v| v.max(0.0)).collect(),
    )
}

/// Gradient of [`relu_fwd`].
pub fn relu_bwd(x: &Tensor, dy: &Tensor) -> Tensor {
    Tensor::new(
        x.shape().to_vec(),
        x.data()
            .iter()
            .zip(dy.data())
            .map(|(&v, &g)| if v > 0.0 { g } else { 0.0 })
            .collect(),
    )
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

/// GeLU with the tanh approximation.
pub fn gelu_fwd(x: &Tensor) -> Tensor {
    Tensor::new(
        x.shape().to_vec(),
        x.data()
            .iter()
            .map(|&v| {
                let u = GELU_C * (v + GELU_A * v * v * v);
                0.5 * v * (1.0 + u.tanh())
            })
            .collect(),
    )
}

/// Gradient of [`gelu_fwd`].
pub fn gelu_bwd(x: &Tensor, dy: &Tensor) -> Tensor {
    Tensor::new(
        x.shape().to_vec(),
        x.data()
            .iter()
            .zip(dy.data())
            .map(|(&v, &g)| {
                let u = GELU_C * (v + GELU_A * v * v * v);
                let t = u.tanh();
                let du = GELU_C * (1.0 + 3.0 * GELU_A * v * v);
                g * (0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du)
            })
            .collect(),
    )
}

/// Cached statistics from a layer-norm forward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    normalized: Tensor,
    rstd: Vec<f32>,
}

/// Layer normalization over the innermost dimension with learnable scale
/// and shift; returns the output and a cache for the backward pass.
pub fn layernorm_fwd(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> (Tensor, LayerNormCache) {
    const EPS: f32 = 1e-5;
    let dim = gamma.numel();
    let rows = x.rows_for(dim);
    let mut y = vec![0.0f32; x.numel()];
    let mut normalized = vec![0.0f32; x.numel()];
    let mut rstd = vec![0.0f32; rows];
    for r in 0..rows {
        let row = &x.data()[r * dim..(r + 1) * dim];
        let mean = row.iter().sum::<f32>() / dim as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
        let rs = 1.0 / (var + EPS).sqrt();
        rstd[r] = rs;
        for c in 0..dim {
            let n = (row[c] - mean) * rs;
            normalized[r * dim + c] = n;
            y[r * dim + c] = n * gamma.data()[c] + beta.data()[c];
        }
    }
    (
        Tensor::new(x.shape().to_vec(), y),
        LayerNormCache {
            normalized: Tensor::new(x.shape().to_vec(), normalized),
            rstd,
        },
    )
}

/// Gradients of [`layernorm_fwd`]: returns `(dx, dgamma, dbeta)`.
pub fn layernorm_bwd(
    cache: &LayerNormCache,
    gamma: &Tensor,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let dim = gamma.numel();
    let rows = dy.rows_for(dim);
    let mut dx = vec![0.0f32; dy.numel()];
    let mut dgamma = Tensor::zeros(vec![dim]);
    let mut dbeta = Tensor::zeros(vec![dim]);
    for r in 0..rows {
        let n = &cache.normalized.data()[r * dim..(r + 1) * dim];
        let g = &dy.data()[r * dim..(r + 1) * dim];
        let mut sum_dyg = 0.0f32;
        let mut sum_dyg_n = 0.0f32;
        for c in 0..dim {
            let dyg = g[c] * gamma.data()[c];
            sum_dyg += dyg;
            sum_dyg_n += dyg * n[c];
            dgamma.data_mut()[c] += g[c] * n[c];
            dbeta.data_mut()[c] += g[c];
        }
        let inv_dim = 1.0 / dim as f32;
        for c in 0..dim {
            let dyg = g[c] * gamma.data()[c];
            dx[r * dim + c] =
                cache.rstd[r] * (dyg - sum_dyg * inv_dim - n[c] * sum_dyg_n * inv_dim);
        }
    }
    (Tensor::new(dy.shape().to_vec(), dx), dgamma, dbeta)
}

/// Row-wise softmax over the innermost dimension.
pub fn softmax_fwd(x: &Tensor, dim: usize) -> Tensor {
    let rows = x.rows_for(dim);
    let mut y = vec![0.0f32; x.numel()];
    for r in 0..rows {
        let row = &x.data()[r * dim..(r + 1) * dim];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for c in 0..dim {
            let e = (row[c] - max).exp();
            y[r * dim + c] = e;
            sum += e;
        }
        for c in 0..dim {
            y[r * dim + c] /= sum;
        }
    }
    Tensor::new(x.shape().to_vec(), y)
}

/// Gradient of [`softmax_fwd`] given its output `y`.
pub fn softmax_bwd(y: &Tensor, dy: &Tensor, dim: usize) -> Tensor {
    let rows = y.rows_for(dim);
    let mut dx = vec![0.0f32; y.numel()];
    for r in 0..rows {
        let yr = &y.data()[r * dim..(r + 1) * dim];
        let gr = &dy.data()[r * dim..(r + 1) * dim];
        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
        for c in 0..dim {
            dx[r * dim + c] = yr[c] * (gr[c] - dot);
        }
    }
    Tensor::new(y.shape().to_vec(), dx)
}

/// Learnable parameters of a multi-head attention block.
#[derive(Debug, Clone)]
pub struct MhaParams {
    /// Query/key/value/output projection matrices, each `[hidden, hidden]`.
    pub wq: Tensor,
    /// Key projection.
    pub wk: Tensor,
    /// Value projection.
    pub wv: Tensor,
    /// Output projection.
    pub wo: Tensor,
    /// Biases, each `[hidden]`.
    pub bq: Tensor,
    /// Key bias.
    pub bk: Tensor,
    /// Value bias.
    pub bv: Tensor,
    /// Output bias.
    pub bo: Tensor,
    /// Number of attention heads.
    pub heads: usize,
}

/// Intermediate state of an MHA forward pass needed by the backward pass.
#[derive(Debug, Clone)]
pub struct MhaCache {
    x: Tensor,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Attention probabilities `[batch * heads, seq, seq]` flattened.
    probs: Tensor,
    ctx: Tensor,
}

/// Multi-head self-attention over `x: [batch, seq, hidden]`.
pub fn mha_fwd(x: &Tensor, p: &MhaParams) -> (Tensor, MhaCache) {
    let (n, s, h) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let heads = p.heads;
    assert_eq!(h % heads, 0, "heads must divide hidden");
    let dh = h / heads;
    let alpha = 1.0 / (dh as f32).sqrt();
    let q = linear_fwd(x, &p.wq, Some(&p.bq));
    let k = linear_fwd(x, &p.wk, Some(&p.bk));
    let v = linear_fwd(x, &p.wv, Some(&p.bv));
    let mut probs = Tensor::zeros(vec![n * heads, s, s]);
    let mut ctx = Tensor::zeros(vec![n, s, h]);
    for i in 0..n {
        for j in 0..heads {
            // Scores S = alpha * Qj Kj^T for this (sample, head).
            let mut scores = Tensor::zeros(vec![s, s]);
            for a in 0..s {
                for b in 0..s {
                    let mut dot = 0.0f32;
                    for c in 0..dh {
                        let qa = q.data()[(i * s + a) * h + j * dh + c];
                        let kb = k.data()[(i * s + b) * h + j * dh + c];
                        dot += qa * kb;
                    }
                    scores.data_mut()[a * s + b] = alpha * dot;
                }
            }
            let pmat = softmax_fwd(&scores, s);
            let off = (i * heads + j) * s * s;
            probs.data_mut()[off..off + s * s].copy_from_slice(pmat.data());
            // Context C = P Vj.
            for a in 0..s {
                for c in 0..dh {
                    let mut acc = 0.0f32;
                    for b in 0..s {
                        acc += pmat.data()[a * s + b] * v.data()[(i * s + b) * h + j * dh + c];
                    }
                    ctx.data_mut()[(i * s + a) * h + j * dh + c] = acc;
                }
            }
        }
    }
    let y = linear_fwd(&ctx, &p.wo, Some(&p.bo));
    (
        y,
        MhaCache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            ctx,
        },
    )
}

/// Gradients of [`mha_fwd`]: returns `(dx, dparams)` where `dparams` has
/// the same structure as [`MhaParams`] (with `heads` copied over).
pub fn mha_bwd(cache: &MhaCache, p: &MhaParams, dy: &Tensor) -> (Tensor, MhaParams) {
    let (n, s, h) = (cache.x.shape()[0], cache.x.shape()[1], cache.x.shape()[2]);
    let heads = p.heads;
    let dh = h / heads;
    let alpha = 1.0 / (dh as f32).sqrt();
    // Output projection.
    let (dctx, dwo, dbo) = linear_bwd(&cache.ctx, &p.wo, dy);
    let mut dq = Tensor::zeros(vec![n, s, h]);
    let mut dk = Tensor::zeros(vec![n, s, h]);
    let mut dv = Tensor::zeros(vec![n, s, h]);
    for i in 0..n {
        for j in 0..heads {
            let off = (i * heads + j) * s * s;
            let pmat = Tensor::new(vec![s, s], cache.probs.data()[off..off + s * s].to_vec());
            // dP = dC Vj^T ; dVj = P^T dC.
            let mut dp = Tensor::zeros(vec![s, s]);
            for a in 0..s {
                for b in 0..s {
                    let mut acc = 0.0f32;
                    for c in 0..dh {
                        acc += dctx.data()[(i * s + a) * h + j * dh + c]
                            * cache.v.data()[(i * s + b) * h + j * dh + c];
                    }
                    dp.data_mut()[a * s + b] = acc;
                }
            }
            for b in 0..s {
                for c in 0..dh {
                    let mut acc = 0.0f32;
                    for a in 0..s {
                        acc += pmat.data()[a * s + b] * dctx.data()[(i * s + a) * h + j * dh + c];
                    }
                    dv.data_mut()[(i * s + b) * h + j * dh + c] = acc;
                }
            }
            // dS through the softmax, then dQ = alpha dS K, dK = alpha dS^T Q.
            let ds = softmax_bwd(&pmat, &dp, s);
            for a in 0..s {
                for c in 0..dh {
                    let mut acc_q = 0.0f32;
                    for b in 0..s {
                        acc_q +=
                            ds.data()[a * s + b] * cache.k.data()[(i * s + b) * h + j * dh + c];
                    }
                    dq.data_mut()[(i * s + a) * h + j * dh + c] = alpha * acc_q;
                }
            }
            for b in 0..s {
                for c in 0..dh {
                    let mut acc_k = 0.0f32;
                    for a in 0..s {
                        acc_k +=
                            ds.data()[a * s + b] * cache.q.data()[(i * s + a) * h + j * dh + c];
                    }
                    dk.data_mut()[(i * s + b) * h + j * dh + c] = alpha * acc_k;
                }
            }
        }
    }
    // Back through the three input projections.
    let (dx_q, dwq, dbq) = linear_bwd(&cache.x, &p.wq, &dq);
    let (dx_k, dwk, dbk) = linear_bwd(&cache.x, &p.wk, &dk);
    let (dx_v, dwv, dbv) = linear_bwd(&cache.x, &p.wv, &dv);
    let mut dx = dx_q;
    dx.axpy(1.0, &dx_k);
    dx.axpy(1.0, &dx_v);
    (
        dx,
        MhaParams {
            wq: dwq,
            wk: dwk,
            wv: dwv,
            wo: dwo,
            bq: dbq,
            bk: dbk,
            bv: dbv,
            bo: dbo,
            heads,
        },
    )
}

/// Embedding-bag lookup: concatenates `bag` table rows per sample.
/// `indices` is `[batch * bag]` row indices into `table: [entries, dim]`.
pub fn embedding_bag_fwd(table: &Tensor, indices: &[usize], batch: usize, bag: usize) -> Tensor {
    let dim = table.shape()[1];
    assert_eq!(indices.len(), batch * bag);
    let mut y = Tensor::zeros(vec![batch, bag * dim]);
    for i in 0..batch {
        for b in 0..bag {
            let row = indices[i * bag + b];
            let src = &table.data()[row * dim..(row + 1) * dim];
            let dst_off = i * bag * dim + b * dim;
            y.data_mut()[dst_off..dst_off + dim].copy_from_slice(src);
        }
    }
    y
}

/// Gradient of [`embedding_bag_fwd`] with respect to the table
/// (scatter-add).
pub fn embedding_bag_bwd(
    dy: &Tensor,
    indices: &[usize],
    entries: usize,
    dim: usize,
    batch: usize,
    bag: usize,
) -> Tensor {
    let mut dtable = Tensor::zeros(vec![entries, dim]);
    for i in 0..batch {
        for b in 0..bag {
            let row = indices[i * bag + b];
            let src_off = i * bag * dim + b * dim;
            for c in 0..dim {
                dtable.data_mut()[row * dim + c] += dy.data()[src_off + c];
            }
        }
    }
    dtable
}

/// Concatenation along the innermost dimension; all inputs share leading
/// dimensions.
pub fn concat_fwd(xs: &[&Tensor]) -> Tensor {
    assert!(!xs.is_empty());
    let cols: Vec<usize> = xs.iter().map(|x| *x.shape().last().unwrap()).collect();
    let rows = xs[0].rows_for(cols[0]);
    let total: usize = cols.iter().sum();
    let mut y = Tensor::zeros(vec![rows, total]);
    for r in 0..rows {
        let mut off = 0;
        for (x, &c) in xs.iter().zip(&cols) {
            let src = &x.data()[r * c..(r + 1) * c];
            y.data_mut()[r * total + off..r * total + off + c].copy_from_slice(src);
            off += c;
        }
    }
    y
}

/// Splits the gradient of [`concat_fwd`] back into per-input gradients.
pub fn concat_bwd(dy: &Tensor, cols: &[usize]) -> Vec<Tensor> {
    let total: usize = cols.iter().sum();
    let rows = dy.rows_for(total);
    let mut outs: Vec<Tensor> = cols.iter().map(|&c| Tensor::zeros(vec![rows, c])).collect();
    for r in 0..rows {
        let mut off = 0;
        for (out, &c) in outs.iter_mut().zip(cols) {
            let dst = r * c;
            out.data_mut()[dst..dst + c]
                .copy_from_slice(&dy.data()[r * total + off..r * total + off + c]);
            off += c;
        }
    }
    outs
}

/// DLRM pairwise feature interaction: `x` is `[batch, features * dim]`,
/// output `[batch, features*(features-1)/2]` of upper-triangle dot
/// products.
pub fn interaction_fwd(x: &Tensor, features: usize, dim: usize) -> Tensor {
    let batch = x.rows_for(features * dim);
    let pairs = features * (features - 1) / 2;
    let mut y = Tensor::zeros(vec![batch, pairs]);
    for n in 0..batch {
        let base = n * features * dim;
        let mut p = 0;
        for i in 0..features {
            for j in i + 1..features {
                let mut dot = 0.0f32;
                for c in 0..dim {
                    dot += x.data()[base + i * dim + c] * x.data()[base + j * dim + c];
                }
                y.data_mut()[n * pairs + p] = dot;
                p += 1;
            }
        }
    }
    y
}

/// Gradient of [`interaction_fwd`].
pub fn interaction_bwd(x: &Tensor, dy: &Tensor, features: usize, dim: usize) -> Tensor {
    let batch = x.rows_for(features * dim);
    let pairs = features * (features - 1) / 2;
    let mut dx = Tensor::zeros(x.shape().to_vec());
    for n in 0..batch {
        let base = n * features * dim;
        let mut p = 0;
        for i in 0..features {
            for j in i + 1..features {
                let g = dy.data()[n * pairs + p];
                for c in 0..dim {
                    dx.data_mut()[base + i * dim + c] += g * x.data()[base + j * dim + c];
                    dx.data_mut()[base + j * dim + c] += g * x.data()[base + i * dim + c];
                }
                p += 1;
            }
        }
    }
    dx
}

/// L2 training loss: `0.5 * sum(x^2) / denom`. With `denom` set to the
/// global mini-batch size, per-micro-batch gradients sum to the exact
/// full-batch gradient, which the runtime's gradient-equivalence tests rely
/// on.
pub fn l2_loss_fwd(x: &Tensor, denom: f32) -> f32 {
    0.5 * x.data().iter().map(|v| v * v).sum::<f32>() / denom
}

/// Gradient of [`l2_loss_fwd`].
pub fn l2_loss_bwd(x: &Tensor, denom: f32) -> Tensor {
    x.scale(1.0 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central-difference gradient check of a scalar function at `x`.
    fn grad_check(f: impl Fn(&Tensor) -> f32, x: &Tensor, analytic: &Tensor, tol: f32) {
        let eps = 1e-2f32;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            let ana = analytic.data()[i];
            let err = (num - ana).abs() / (1.0f32).max(num.abs().max(ana.abs()));
            assert!(
                err < tol,
                "element {i}: numeric {num} vs analytic {ana} (err {err})"
            );
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_forward_matches_manual() {
        let x = Tensor::new(vec![1, 2], vec![1.0, 2.0]);
        let w = Tensor::new(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let b = Tensor::new(vec![2], vec![0.5, -0.5]);
        let y = linear_fwd(&x, &w, Some(&b));
        assert_eq!(y.data(), &[1.5, 1.5]);
    }

    #[test]
    fn linear_gradients() {
        let mut r = rng();
        let x = Tensor::rand_uniform(vec![3, 4], 1.0, &mut r);
        let w = Tensor::rand_uniform(vec![4, 5], 1.0, &mut r);
        let b = Tensor::rand_uniform(vec![5], 1.0, &mut r);
        let probe = Tensor::rand_uniform(vec![3, 5], 1.0, &mut r);
        let loss =
            |y: &Tensor| -> f32 { y.data().iter().zip(probe.data()).map(|(a, b)| a * b).sum() };
        let y = linear_fwd(&x, &w, Some(&b));
        let _ = loss(&y);
        let (dx, dw, db) = linear_bwd(&x, &w, &probe);
        grad_check(|x| loss(&linear_fwd(x, &w, Some(&b))), &x, &dx, 2e-2);
        grad_check(|w| loss(&linear_fwd(&x, w, Some(&b))), &w, &dw, 2e-2);
        grad_check(|b| loss(&linear_fwd(&x, &w, Some(b))), &b, &db, 2e-2);
    }

    #[test]
    fn relu_and_gelu_gradients() {
        let mut r = rng();
        let x = Tensor::rand_uniform(vec![10], 2.0, &mut r);
        let probe = Tensor::rand_uniform(vec![10], 1.0, &mut r);
        let loss = |y: &Tensor| {
            y.data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let d_relu = relu_bwd(&x, &probe);
        grad_check(|x| loss(&relu_fwd(x)), &x, &d_relu, 3e-2);
        let d_gelu = gelu_bwd(&x, &probe);
        grad_check(|x| loss(&gelu_fwd(x)), &x, &d_gelu, 3e-2);
    }

    #[test]
    fn layernorm_gradients() {
        let mut r = rng();
        let x = Tensor::rand_uniform(vec![2, 6], 1.0, &mut r);
        let gamma = Tensor::rand_uniform(vec![6], 1.0, &mut r);
        let beta = Tensor::rand_uniform(vec![6], 1.0, &mut r);
        let probe = Tensor::rand_uniform(vec![2, 6], 1.0, &mut r);
        let loss = |y: &Tensor| {
            y.data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = layernorm_fwd(&x, &gamma, &beta);
        let (dx, dgamma, dbeta) = layernorm_bwd(&cache, &gamma, &probe);
        grad_check(|x| loss(&layernorm_fwd(x, &gamma, &beta).0), &x, &dx, 3e-2);
        grad_check(
            |g| loss(&layernorm_fwd(&x, g, &beta).0),
            &gamma,
            &dgamma,
            3e-2,
        );
        grad_check(
            |b| loss(&layernorm_fwd(&x, &gamma, b).0),
            &beta,
            &dbeta,
            3e-2,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut r = rng();
        let x = Tensor::rand_uniform(vec![3, 5], 2.0, &mut r);
        let y = softmax_fwd(&x, 5);
        for row in 0..3 {
            let s: f32 = y.data()[row * 5..(row + 1) * 5].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_gradients() {
        let mut r = rng();
        let x = Tensor::rand_uniform(vec![2, 4], 1.0, &mut r);
        let probe = Tensor::rand_uniform(vec![2, 4], 1.0, &mut r);
        let loss = |y: &Tensor| {
            y.data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let y = softmax_fwd(&x, 4);
        let dx = softmax_bwd(&y, &probe, 4);
        grad_check(|x| loss(&softmax_fwd(x, 4)), &x, &dx, 3e-2);
    }

    fn mha_params(h: usize, heads: usize, r: &mut StdRng) -> MhaParams {
        MhaParams {
            wq: Tensor::rand_uniform(vec![h, h], 0.5, r),
            wk: Tensor::rand_uniform(vec![h, h], 0.5, r),
            wv: Tensor::rand_uniform(vec![h, h], 0.5, r),
            wo: Tensor::rand_uniform(vec![h, h], 0.5, r),
            bq: Tensor::rand_uniform(vec![h], 0.5, r),
            bk: Tensor::rand_uniform(vec![h], 0.5, r),
            bv: Tensor::rand_uniform(vec![h], 0.5, r),
            bo: Tensor::rand_uniform(vec![h], 0.5, r),
            heads,
        }
    }

    #[test]
    fn mha_input_gradients() {
        let mut r = rng();
        let (n, s, h) = (2, 3, 4);
        let p = mha_params(h, 2, &mut r);
        let x = Tensor::rand_uniform(vec![n, s, h], 0.5, &mut r);
        let probe = Tensor::rand_uniform(vec![n, s, h], 1.0, &mut r);
        let loss = |y: &Tensor| {
            y.data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = mha_fwd(&x, &p);
        let (dx, _) = mha_bwd(&cache, &p, &probe);
        grad_check(|x| loss(&mha_fwd(x, &p).0), &x, &dx, 5e-2);
    }

    #[test]
    fn mha_weight_gradients() {
        let mut r = rng();
        let (n, s, h) = (1, 3, 4);
        let p = mha_params(h, 2, &mut r);
        let x = Tensor::rand_uniform(vec![n, s, h], 0.5, &mut r);
        let probe = Tensor::rand_uniform(vec![n, s, h], 1.0, &mut r);
        let loss = |y: &Tensor| {
            y.data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = mha_fwd(&x, &p);
        let (_, grads) = mha_bwd(&cache, &p, &probe);
        // Spot-check two of the weight matrices and one bias.
        grad_check(
            |wq| {
                let mut p2 = p.clone();
                p2.wq = wq.clone();
                loss(&mha_fwd(&x, &p2).0)
            },
            &p.wq,
            &grads.wq,
            5e-2,
        );
        grad_check(
            |wo| {
                let mut p2 = p.clone();
                p2.wo = wo.clone();
                loss(&mha_fwd(&x, &p2).0)
            },
            &p.wo,
            &grads.wo,
            5e-2,
        );
        grad_check(
            |bv| {
                let mut p2 = p.clone();
                p2.bv = bv.clone();
                loss(&mha_fwd(&x, &p2).0)
            },
            &p.bv,
            &grads.bv,
            5e-2,
        );
    }

    #[test]
    fn embedding_bag_roundtrip() {
        let table = Tensor::new(vec![4, 2], (0..8).map(|v| v as f32).collect());
        let indices = vec![0usize, 3, 1, 1];
        let y = embedding_bag_fwd(&table, &indices, 2, 2);
        assert_eq!(y.shape(), &[2, 4]);
        assert_eq!(y.data(), &[0., 1., 6., 7., 2., 3., 2., 3.]);
        // Backward scatters with accumulation for repeated rows.
        let dy = Tensor::ones(vec![2, 4]);
        let dt = embedding_bag_bwd(&dy, &indices, 4, 2, 2, 2);
        assert_eq!(dt.data(), &[1., 1., 2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn concat_roundtrip() {
        let a = Tensor::new(vec![2, 1], vec![1., 2.]);
        let b = Tensor::new(vec![2, 2], vec![3., 4., 5., 6.]);
        let y = concat_fwd(&[&a, &b]);
        assert_eq!(y.data(), &[1., 3., 4., 2., 5., 6.]);
        let parts = concat_bwd(&y, &[1, 2]);
        assert_eq!(parts[0].data(), a.data());
        assert_eq!(parts[1].data(), b.data());
    }

    #[test]
    fn interaction_gradients() {
        let mut r = rng();
        let (f, d) = (3, 2);
        let x = Tensor::rand_uniform(vec![2, f * d], 1.0, &mut r);
        let probe = Tensor::rand_uniform(vec![2, f * (f - 1) / 2], 1.0, &mut r);
        let loss = |y: &Tensor| {
            y.data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let dx = interaction_bwd(&x, &probe, f, d);
        grad_check(|x| loss(&interaction_fwd(x, f, d)), &x, &dx, 3e-2);
    }

    #[test]
    fn l2_loss_gradients() {
        let mut r = rng();
        let x = Tensor::rand_uniform(vec![6], 1.0, &mut r);
        let dx = l2_loss_bwd(&x, 4.0);
        grad_check(|x| l2_loss_fwd(x, 4.0), &x, &dx, 3e-2);
    }

    #[test]
    fn micro_batch_loss_grads_sum_to_full_batch() {
        // The denom convention: gradients from two half-batches add up to
        // the full-batch gradient.
        let x = Tensor::new(vec![4, 2], (0..8).map(|v| v as f32).collect());
        let full = l2_loss_bwd(&x, 4.0);
        let top = x.slice_rows(2, 0, 2);
        let bot = x.slice_rows(2, 2, 4);
        let g_top = l2_loss_bwd(&top, 4.0);
        let g_bot = l2_loss_bwd(&bot, 4.0);
        let mut merged = Tensor::zeros(vec![4, 2]);
        merged.add_rows(2, 0, &g_top);
        merged.add_rows(2, 2, &g_bot);
        assert!(full.max_abs_diff(&merged) < 1e-7);
        let l_full = l2_loss_fwd(&x, 4.0);
        let l_sum = l2_loss_fwd(&top, 4.0) + l2_loss_fwd(&bot, 4.0);
        assert!((l_full - l_sum).abs() < 1e-4);
    }
}
