//! A minimal dense f32 tensor.

use rand::distr::{Distribution, StandardUniform};
use rand::Rng;
use std::fmt;

/// A dense, row-major f32 tensor.
///
/// The first dimension is conventionally the batch dimension throughout the
/// runtime crates.
///
/// # Examples
///
/// ```
/// use gp_tensor::Tensor;
///
/// let a = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
/// let b = Tensor::ones(vec![3, 2]);
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), &[2, 2]);
/// assert_eq!(c.data(), &[6., 6., 15., 15.]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and matching data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} needs {numel} elements, got {}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// An all-zeros tensor.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; numel],
        }
    }

    /// An all-ones tensor.
    pub fn ones(shape: Vec<usize>) -> Tensor {
        let numel = shape.iter().product();
        Tensor {
            shape,
            data: vec![1.0; numel],
        }
    }

    /// A tensor with uniform values in `[-scale, scale)` (a simple
    /// fan-in-agnostic initializer adequate for the tiny training runs the
    /// runtime performs).
    pub fn rand_uniform<R: Rng>(shape: Vec<usize>, scale: f32, rng: &mut R) -> Tensor {
        let numel = shape.iter().product();
        let data = (0..numel)
            .map(|_| {
                let u: f32 = StandardUniform.sample(rng);
                (2.0 * u - 1.0) * scale
            })
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable element view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its elements.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        Tensor::new(shape, self.data.clone())
    }

    /// Rows of a 2-D view `[rows, cols]` where `cols` is the innermost
    /// dimension.
    pub fn rows_for(&self, cols: usize) -> usize {
        assert!(
            cols > 0 && self.numel().is_multiple_of(cols),
            "numel {} not divisible by {cols}",
            self.numel()
        );
        self.numel() / cols
    }

    /// Elementwise sum with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise scaling.
    pub fn scale(&self, alpha: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * alpha).collect(),
        }
    }

    /// 2-D matrix product: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &r) in dst.iter_mut().zip(row) {
                    *d += a * r;
                }
            }
        }
        Tensor::new(vec![m, n], out)
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::new(vec![n, m], out)
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "compare: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Copies rows `[row_start, row_end)` of the 2-D view with `cols`
    /// columns.
    pub fn slice_rows(&self, cols: usize, row_start: usize, row_end: usize) -> Tensor {
        let rows = self.rows_for(cols);
        assert!(row_start <= row_end && row_end <= rows);
        let data = self.data[row_start * cols..row_end * cols].to_vec();
        Tensor::new(vec![row_end - row_start, cols], data)
    }

    /// Adds `other` into rows `[row_start, ...)` of the 2-D view.
    pub fn add_rows(&mut self, cols: usize, row_start: usize, other: &Tensor) {
        let o_rows = other.rows_for(cols);
        let start = row_start * cols;
        for (dst, src) in self.data[start..start + o_rows * cols]
            .iter_mut()
            .zip(other.data())
        {
            *dst += src;
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_views() {
        let t = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.rows_for(2), 2);
        assert_eq!(Tensor::zeros(vec![3]).data(), &[0., 0., 0.]);
        assert_eq!(Tensor::ones(vec![2]).data(), &[1., 1.]);
    }

    #[test]
    #[should_panic(expected = "needs 4 elements")]
    fn bad_construction_panics() {
        let _ = Tensor::new(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]);
        let eye = Tensor::new(vec![2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(vec![3, 1], vec![1., 1., 1.]);
        assert_eq!(a.matmul(&b).data(), &[6., 15.]);
    }

    #[test]
    fn transpose_roundtrips() {
        let a = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().shape(), &[3, 2]);
        assert_eq!(a.t().data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(vec![3]);
        let b = Tensor::new(vec![3], vec![1., 2., 3.]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3., 5., 7.]);
        assert_eq!(a.scale(0.5).data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn row_slicing() {
        let a = Tensor::new(vec![4, 2], (0..8).map(|v| v as f32).collect());
        let mid = a.slice_rows(2, 1, 3);
        assert_eq!(mid.data(), &[2., 3., 4., 5.]);
        let mut acc = Tensor::zeros(vec![4, 2]);
        acc.add_rows(2, 1, &mid);
        assert_eq!(acc.data(), &[0., 0., 2., 3., 4., 5., 0., 0.]);
    }

    #[test]
    fn rand_uniform_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(vec![100], 0.3, &mut rng);
        assert!(t.data().iter().all(|v| v.abs() <= 0.3));
        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor::rand_uniform(vec![100], 0.3, &mut rng2);
        assert_eq!(t, t2);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::new(vec![2], vec![1.0, 2.0]);
        let b = Tensor::new(vec![2], vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
