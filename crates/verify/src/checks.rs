//! The invariant checks themselves: `verify_stages`, `verify_stage_graph`,
//! `verify_schedule`, `verify_plan`, and `verify_strategy`.
//!
//! Every check is named after its DESIGN.md §"Invariant catalog" entry (see
//! [`Check`]); the entry points compose so each caller pays only for the
//! structures it holds. None of the checks execute anything — the
//! deadlock-freedom certificate in particular is a topological argument
//! over the same task dependency graph `gp-sim` relaxes, not a simulation.

use crate::report::{Check, Location, VerifyReport, Violation};
use gp_cluster::Cluster;
use gp_cost::{CostModel, Pass};
use gp_ir::{Graph, SpModel};
use gp_partition::Plan;
use gp_sched::{
    assign_in_flight, covering_micro_batches, PipelineSchedule, ScheduleError, Stage, StageGraph,
    StageGraphError, StageId, TaskIndex,
};

/// Verifies the raw stage list against the model graph and cluster, before
/// (or without) a [`StageGraph`] existing: `mini-batch-positive`,
/// `stage-ids-dense`, `stage-nonempty`, `micro-batch-divides`,
/// `op-cover-exact`, `op-convex`, `device-bounds`, `device-overlap`,
/// `device-coverage`, and `stage-acyclic` over the data-derived stage DAG
/// (DESIGN.md §"Invariant catalog").
///
/// This is the codec's trust anchor: a decoded artifact's stages run
/// through here first, so a corrupted artifact is diagnosed by invariant
/// name instead of failing opaquely inside `StageGraph::new`.
pub fn verify_stages(
    graph: &Graph,
    cluster: &Cluster,
    stages: &[Stage],
    mini_batch: u64,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    if mini_batch == 0 {
        report.fail(
            Check::MiniBatchPositive,
            Location::global(),
            "mini-batch size is 0",
        );
    }
    if stages.is_empty() {
        report.fail(Check::OpCoverExact, Location::global(), "no stages");
        return report;
    }
    let mut ids_dense = true;
    for (i, s) in stages.iter().enumerate() {
        if s.id.index() != i {
            ids_dense = false;
            report.fail(
                Check::StageIdsDense,
                Location::stage(s.id),
                format!("stage at position {i} has id {}", s.id),
            );
        }
        if s.ops.is_empty() {
            report.fail(
                Check::StageNonEmpty,
                Location::stage(s.id),
                "stage holds no operators",
            );
        }
        if s.kfkb == 0 {
            report.fail(
                Check::StageNonEmpty,
                Location::stage(s.id),
                "kFkB parameter is 0",
            );
        }
        if s.micro_batch == 0 {
            report.fail(
                Check::MicroBatchDivides,
                Location::stage(s.id),
                "micro-batch size is 0",
            );
        } else if mini_batch > 0 && !mini_batch.is_multiple_of(s.micro_batch) {
            report.fail(
                Check::MicroBatchDivides,
                Location::stage(s.id),
                format!(
                    "micro-batch size {} does not divide mini-batch size {mini_batch}",
                    s.micro_batch
                ),
            );
        }
    }
    // C1, partition half: every operator covered exactly once, every
    // referenced operator in range.
    let mut ops_in_bounds = true;
    let mut cover_exact = true;
    let mut stage_of = vec![u32::MAX; graph.len()];
    for s in stages {
        for &op in &s.ops {
            if op.index() >= graph.len() {
                ops_in_bounds = false;
                cover_exact = false;
                report.fail(
                    Check::OpCoverExact,
                    Location::stage(s.id).at_op(op),
                    format!("references operator outside the {}-op graph", graph.len()),
                );
            } else if stage_of[op.index()] != u32::MAX {
                cover_exact = false;
                report.fail(
                    Check::OpCoverExact,
                    Location::stage(s.id).at_op(op),
                    format!(
                        "operator already assigned to stage S{}",
                        stage_of[op.index()]
                    ),
                );
            } else {
                stage_of[op.index()] = s.id.0;
            }
        }
    }
    for (i, &owner) in stage_of.iter().enumerate() {
        if owner == u32::MAX {
            cover_exact = false;
            report.fail(
                Check::OpCoverExact,
                Location::global().at_op(gp_ir::OpId(i as u32)),
                "operator is not assigned to any stage",
            );
        }
    }
    // C1, convexity half (needs in-bounds ops).
    if ops_in_bounds {
        for s in stages {
            if !graph.is_convex(&s.ops) {
                report.fail(
                    Check::OpConvex,
                    Location::stage(s.id),
                    "operator set is not a convex subgraph: a path leaves and re-enters it",
                );
            }
        }
    }
    // C3: device bounds, disjointness, exact coverage.
    for s in stages {
        if s.devices.last().index() >= cluster.device_count() {
            report.fail(
                Check::DeviceBounds,
                Location::stage(s.id).on_device(s.devices.last()),
                format!(
                    "device outside the {}-device cluster",
                    cluster.device_count()
                ),
            );
        }
    }
    for (i, a) in stages.iter().enumerate() {
        for b in &stages[i + 1..] {
            if a.devices.overlaps(&b.devices) {
                report.fail(
                    Check::DeviceOverlap,
                    Location::stage(a.id).on_device(b.devices.first().max(a.devices.first())),
                    format!("device ranges of {} and {} overlap", a.id, b.id),
                );
            }
        }
    }
    let assigned: usize = stages.iter().map(|s| s.devices.len()).sum();
    if assigned != cluster.device_count() {
        report.fail(
            Check::DeviceCoverage,
            Location::global(),
            format!(
                "stages assign {assigned} devices but the cluster has {}",
                cluster.device_count()
            ),
        );
    }
    // Acyclicity of the data-derived stage DAG. Needs dense ids and an
    // exact cover for a trustworthy `stage_of` table.
    if ids_dense && cover_exact {
        let n = stages.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (u, v) in graph.edges() {
            let (su, sv) = (stage_of[u.index()], stage_of[v.index()]);
            if su != sv && !succs[su as usize].contains(&sv) {
                succs[su as usize].push(sv);
                indeg[sv as usize] += 1;
            }
        }
        let mut stack: Vec<u32> = (0..n as u32).filter(|&s| indeg[s as usize] == 0).collect();
        let mut seen = 0usize;
        while let Some(s) = stack.pop() {
            seen += 1;
            for &t in &succs[s as usize] {
                indeg[t as usize] -= 1;
                if indeg[t as usize] == 0 {
                    stack.push(t);
                }
            }
        }
        if seen != n {
            let cyclic = indeg
                .iter()
                .position(|&d| d > 0)
                .map(|i| StageId(i as u32))
                .expect("an unprocessed stage retains in-degree");
            report.fail(
                Check::StageAcyclic,
                Location::stage(cyclic),
                format!("the data-derived stage DAG is cyclic ({seen}/{n} stages sort)"),
            );
        }
    }
    report
}

/// Verifies a constructed [`StageGraph`]: everything [`verify_stages`]
/// covers plus `edge-derivation` — every data-derived edge (condition C2)
/// must be recorded, and any extra recorded edge must be an imposed
/// sequential-chain edge `S_i -> S_{i+1}`; predecessor and successor lists
/// must mirror each other (DESIGN.md §"Invariant catalog").
///
/// `StageGraph::new` establishes these at construction; this re-proves
/// them for graphs that arrive through serialization or other
/// non-constructor paths.
pub fn verify_stage_graph(graph: &Graph, cluster: &Cluster, sg: &StageGraph) -> VerifyReport {
    let stages: Vec<Stage> = sg.stages().cloned().collect();
    let mut report = verify_stages(graph, cluster, &stages, sg.mini_batch());
    if !report.is_clean() {
        return report;
    }
    // Recorded edges: succs-derived, sorted by construction.
    let recorded = sg.stage_edges();
    // preds must mirror succs.
    let mut from_preds: Vec<(StageId, StageId)> = stages
        .iter()
        .flat_map(|s| sg.preds(s.id).iter().map(move |&p| (p, s.id)))
        .collect();
    from_preds.sort_unstable();
    if from_preds != recorded {
        report.fail(
            Check::EdgeDerivation,
            Location::global(),
            "stage predecessor and successor lists disagree",
        );
        return report;
    }
    // Every data edge must be recorded.
    let mut derived: Vec<(StageId, StageId)> = Vec::new();
    for (u, v) in graph.edges() {
        let (su, sv) = (sg.stage_of(u), sg.stage_of(v));
        if su != sv && !derived.contains(&(su, sv)) {
            derived.push((su, sv));
        }
    }
    derived.sort_unstable();
    for &(u, v) in &derived {
        if recorded.binary_search(&(u, v)).is_err() {
            report.fail(
                Check::EdgeDerivation,
                Location::stage(u),
                format!("data-derived stage edge {u} -> {v} is missing (C2)"),
            );
        }
    }
    // Extra recorded edges are only legitimate as sequential-chain edges.
    for &(u, v) in &recorded {
        let is_chain = v.0 == u.0 + 1;
        if derived.binary_search(&(u, v)).is_err() && !is_chain {
            report.fail(
                Check::EdgeDerivation,
                Location::stage(u),
                format!("recorded stage edge {u} -> {v} has no data edge and is not a chain edge"),
            );
        }
    }
    report
}

/// Verifies a schedule against its stage graph: `schedule-coverage`,
/// `task-multiset`, `forward-order`, `backward-order`,
/// `backward-after-forward`, `warmup-consistent`, and — when the structure
/// is sound — the `deadlock-free` topological certificate (DESIGN.md
/// §"Invariant catalog").
pub fn verify_schedule(sg: &StageGraph, schedule: &PipelineSchedule) -> VerifyReport {
    let mut report = VerifyReport::new();
    if schedule.per_stage.len() != sg.len() {
        report.fail(
            Check::ScheduleCoverage,
            Location::global(),
            format!(
                "schedule covers {} stages but the strategy has {}",
                schedule.per_stage.len(),
                sg.len()
            ),
        );
        return report;
    }
    for (i, ss) in schedule.per_stage.iter().enumerate() {
        if ss.stage.index() != i {
            report.fail(
                Check::ScheduleCoverage,
                Location::stage(ss.stage),
                format!("task order at position {i} names stage {}", ss.stage),
            );
        }
    }
    if !report.is_clean() {
        return report;
    }
    for ss in &schedule.per_stage {
        let m = sg.stage(ss.stage).num_micro_batches(sg.mini_batch());
        // C4 + exact multiset, scanned once. Forwards and backwards must
        // each run micro-batches 0..m in order, and no backward may precede
        // its own forward.
        let mut next_f = 0u64;
        let mut next_b = 0u64;
        let mut structural = true;
        for t in &ss.tasks {
            if (t.mb as u64) >= m {
                report.fail(
                    Check::TaskMultiset,
                    Location::stage(ss.stage).at_task(t.mb, t.pass),
                    format!("micro-batch beyond the stage's {m}"),
                );
                structural = false;
                continue;
            }
            match t.pass {
                Pass::Forward => {
                    if t.mb as u64 != next_f {
                        report.fail(
                            Check::ForwardOrder,
                            Location::stage(ss.stage).at_task(t.mb, t.pass),
                            format!("expected F({next_f}) next (C4)"),
                        );
                        structural = false;
                    }
                    next_f = (t.mb as u64).max(next_f) + 1;
                }
                Pass::Backward => {
                    if t.mb as u64 != next_b {
                        report.fail(
                            Check::BackwardOrder,
                            Location::stage(ss.stage).at_task(t.mb, t.pass),
                            format!("expected B({next_b}) next (C4)"),
                        );
                        structural = false;
                    }
                    if t.mb as u64 >= next_f {
                        report.fail(
                            Check::BackwardAfterForward,
                            Location::stage(ss.stage).at_task(t.mb, t.pass),
                            "backward precedes its own forward (C4)",
                        );
                        structural = false;
                    }
                    next_b = (t.mb as u64).max(next_b) + 1;
                }
            }
        }
        if structural && (next_f != m || next_b != m) {
            report.fail(
                Check::TaskMultiset,
                Location::stage(ss.stage),
                format!("ran {next_f} forwards and {next_b} backwards, expected {m} each"),
            );
        }
        let leading = ss
            .tasks
            .iter()
            .take_while(|t| t.pass == Pass::Forward)
            .count() as u64;
        if ss.warmup != leading {
            report.fail(
                Check::WarmupConsistent,
                Location::stage(ss.stage),
                format!(
                    "recorded warm-up {} but the order opens with {leading} forwards",
                    ss.warmup
                ),
            );
        }
    }
    // The certificate assumes per-stage orders are complete and in-range;
    // only run it once the structural checks hold.
    if report.is_clean() {
        deadlock_certificate(sg, schedule, &mut report);
    }
    report
}

/// Proves the schedule deadlock-free by topologically sorting the exact
/// task dependency graph the simulator executes (`deadlock-free`,
/// DESIGN.md §"Invariant catalog"): per-replica queue edges (replica
/// `mb % d` of a stage runs its tasks in schedule order), forward-pass
/// data edges over covering micro-batches of every predecessor stage, and
/// backward-pass edges from the task's own forward plus covering backwards
/// of every successor stage. If Kahn's algorithm consumes every task, no
/// execution of the fixed per-device orders can stall; otherwise the
/// lowest-indexed stuck task names the cycle.
fn deadlock_certificate(sg: &StageGraph, schedule: &PipelineSchedule, report: &mut VerifyReport) {
    let idx = TaskIndex::new(sg);
    let n = idx.len();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    // Queue edges: each replica executes its share of the stage order
    // serially (the simulator's device queues).
    for s in sg.stages() {
        let d = s.dp_degree() as u32;
        let mut prev: Vec<Option<usize>> = vec![None; d as usize];
        for t in &schedule.stage(s.id).tasks {
            let ti = idx.index(s.id, t.mb, t.pass);
            let r = (t.mb % d) as usize;
            if let Some(p) = prev[r] {
                succs[p].push(ti as u32);
                indeg[ti] += 1;
            }
            prev[r] = Some(ti);
        }
    }
    // Data edges, mirroring `gp-sim`'s `ready_time`.
    for s in sg.stages() {
        let m = s.num_micro_batches(sg.mini_batch()) as u32;
        for mb in 0..m {
            let f = idx.index(s.id, mb, Pass::Forward);
            for &p in sg.preds(s.id) {
                for mb_p in covering_micro_batches(sg.stage(p).micro_batch, s.micro_batch, mb) {
                    let dep = idx.index(p, mb_p, Pass::Forward);
                    succs[dep].push(f as u32);
                    indeg[f] += 1;
                }
            }
            let b = idx.index(s.id, mb, Pass::Backward);
            succs[f].push(b as u32);
            indeg[b] += 1;
            for &t in sg.succs(s.id) {
                for mb_t in covering_micro_batches(sg.stage(t).micro_batch, s.micro_batch, mb) {
                    let dep = idx.index(t, mb_t, Pass::Backward);
                    succs[dep].push(b as u32);
                    indeg[b] += 1;
                }
            }
        }
    }
    let mut stack: Vec<u32> = (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
    let mut done = 0usize;
    while let Some(t) = stack.pop() {
        done += 1;
        for &u in &succs[t as usize] {
            indeg[u as usize] -= 1;
            if indeg[u as usize] == 0 {
                stack.push(u);
            }
        }
    }
    if done != n {
        let stuck = indeg
            .iter()
            .position(|&d| d > 0)
            .expect("an unschedulable task retains in-degree");
        let (stage, mb, pass) = idx.task_at(stuck);
        let s = sg.stage(stage);
        let dev = gp_cluster::DeviceId(s.devices.first().0 + mb % s.dp_degree() as u32);
        report.fail(
            Check::DeadlockFree,
            Location::stage(stage).on_device(dev).at_task(mb, pass),
            format!("task can never run: the dependency graph has a cycle ({done}/{n} tasks sort)"),
        );
    }
}

/// Verifies a complete [`Plan`]: the stage graph and schedule, plus
/// `in-flight-consistent` (the recorded table equals the `ComputeInFlight`
/// recomputation), `stash-bound` (the schedule never holds more
/// micro-batches in flight than the table budgets), `memory-budget`
/// (Equation 2 per stage), `estimate-consistent` (the fingerprinted
/// estimates equal their cost-model recomputation bit-exactly), and
/// `estimate-finite` (DESIGN.md §"Invariant catalog").
pub fn verify_plan(graph: &Graph, cluster: &Cluster, plan: &Plan) -> VerifyReport {
    let sg = &plan.stage_graph;
    let mut report = verify_stage_graph(graph, cluster, sg);
    if !plan.bottleneck_tps.is_finite() || plan.bottleneck_tps < 0.0 {
        report.fail(
            Check::EstimateFinite,
            Location::global(),
            format!(
                "bottleneck TPS {} is not a finite non-negative value",
                plan.bottleneck_tps
            ),
        );
    }
    if !report.is_clean() {
        return report;
    }
    if plan.in_flight.len() != sg.len() {
        report.fail(
            Check::InFlightConsistent,
            Location::global(),
            format!(
                "in-flight table covers {} stages but the strategy has {}",
                plan.in_flight.len(),
                sg.len()
            ),
        );
        return report;
    }
    let expected = assign_in_flight(sg);
    for s in sg.stages() {
        if plan.in_flight.samples(s.id) != expected.samples(s.id) {
            report.fail(
                Check::InFlightConsistent,
                Location::stage(s.id),
                format!(
                    "in-flight table records {} samples but ComputeInFlight yields {}",
                    plan.in_flight.samples(s.id),
                    expected.samples(s.id)
                ),
            );
        }
    }
    report.merge(verify_schedule(sg, &plan.schedule));
    if !report.is_clean() {
        return report;
    }
    // The in-flight budget is charged in whole micro-batches (see
    // `CostModel::in_flight_per_replica`), so the bound compares
    // micro-batch counts.
    for s in sg.stages() {
        let held = plan.schedule.stage(s.id).peak_in_flight_micro_batches();
        let budget = plan.in_flight.micro_batches(sg, s.id);
        if held > budget {
            report.fail(
                Check::StashBound,
                Location::stage(s.id),
                format!(
                    "schedule holds {held} micro-batches in flight but the table budgets {budget}"
                ),
            );
        }
    }
    let cost = CostModel::new(cluster);
    for s in sg.stages() {
        let bytes = cost.stage_memory_bytes(
            graph,
            &s.ops,
            plan.in_flight.samples(s.id),
            s.micro_batch,
            s.dp_degree(),
        );
        if bytes > cost.memory_budget() {
            report.fail(
                Check::MemoryBudget,
                Location::stage(s.id).on_device(s.devices.first()),
                format!(
                    "needs {bytes} bytes per device, budget is {} (Equation 2)",
                    cost.memory_budget()
                ),
            );
        }
    }
    let (tps, mem) = plan.measure(graph, &cost);
    if plan.bottleneck_tps.to_bits() != tps.to_bits() {
        report.fail(
            Check::EstimateConsistent,
            Location::global(),
            format!(
                "recorded bottleneck TPS {:e} but the cost model yields {tps:e}",
                plan.bottleneck_tps
            ),
        );
    }
    if plan.peak_memory_bytes != mem {
        report.fail(
            Check::EstimateConsistent,
            Location::global(),
            format!(
                "recorded peak memory {} bytes but the cost model yields {mem}",
                plan.peak_memory_bytes
            ),
        );
    }
    report
}

/// Verifies a plan against its source model: `sp-cover-exact`,
/// `sp-topo-order`, `sp-edge-cover`, `distortion-exact` and
/// `plan-path-consistent` over the model's SP tree and plan path, then
/// everything [`verify_plan`] covers (DESIGN.md §"Invariant catalog").
/// This is the check `Session::plan` and `Session::load_artifact` run at
/// their trust boundaries.
pub fn verify_strategy(model: &SpModel, cluster: &Cluster, plan: &Plan) -> VerifyReport {
    let graph = model.graph();
    let mut report = VerifyReport::new();
    let order = model.linearize();
    let mut seen = vec![false; graph.len()];
    let mut sp_cover = order.len() == graph.len();
    for &op in &order {
        if op.index() >= graph.len() || seen[op.index()] {
            sp_cover = false;
            break;
        }
        seen[op.index()] = true;
    }
    if !sp_cover {
        report.fail(
            Check::SpCoverExact,
            Location::global(),
            format!(
                "SP tree names {} operators, graph has {}; coverage must be exactly one-to-one",
                order.len(),
                graph.len()
            ),
        );
    } else if !graph.is_topo_order(&order) {
        report.fail(
            Check::SpTopoOrder,
            Location::global(),
            "the SP tree's series linearization is not a topological order of the graph",
        );
    } else {
        // With a one-to-one topological tree established, the edge and
        // distortion accounting of the DAG ladder becomes checkable.
        let violations = gp_ir::dag::edge_cover_violations(graph, model.root());
        if let Some(&(u, v)) = violations.first() {
            report.fail(
                Check::SpEdgeCover,
                Location::global().at_op(u),
                format!(
                    "the SP tree does not admit data edge {u} -> {v} ({} edge(s) lost); \
                     an SP-ized plan must cover the original dependency set",
                    violations.len()
                ),
            );
        } else if let gp_ir::PlanPath::SpIzed { distortion } = model.path() {
            let recomputed = gp_ir::dag::transit_volume(graph, model.root());
            if distortion != recomputed {
                report.fail(
                    Check::DistortionExact,
                    Location::global(),
                    format!(
                        "plan path reports distortion {distortion} bytes but the tree's \
                         transit volume recomputes to {recomputed}"
                    ),
                );
            }
        }
    }
    if plan.path != model.path() {
        report.fail(
            Check::PlanPathConsistent,
            Location::global(),
            format!(
                "plan records path `{}` but the model took `{}`",
                plan.path,
                model.path()
            ),
        );
    } else if let gp_ir::PlanPath::Clustered { units } = plan.path {
        if units == 0 || units as usize > graph.len() {
            report.fail(
                Check::PlanPathConsistent,
                Location::global(),
                format!(
                    "clustered plan path reports {units} units for a {}-operator graph; \
                     expected 1..={}",
                    graph.len(),
                    graph.len()
                ),
            );
        }
    }
    report.merge(verify_plan(graph, cluster, plan));
    report
}

/// Maps a [`StageGraphError`] (from `StageGraph::new`) to its catalog
/// violation, so constructor failures report the same names as the
/// analyzer.
pub fn violation_of_stage_graph_error(e: &StageGraphError) -> Violation {
    let (check, location) = match e {
        StageGraphError::NotAPartition(op) => (Check::OpCoverExact, Location::global().at_op(*op)),
        StageGraphError::NotConvex(s) => (Check::OpConvex, Location::stage(*s)),
        StageGraphError::CyclicStages => (Check::StageAcyclic, Location::global()),
        StageGraphError::DeviceOverlap(a, _) => (Check::DeviceOverlap, Location::stage(*a)),
        StageGraphError::DeviceCoverage { .. } => (Check::DeviceCoverage, Location::global()),
        StageGraphError::BadMicroBatch(s) => (Check::MicroBatchDivides, Location::stage(*s)),
        StageGraphError::EmptyStage(s) => (Check::StageNonEmpty, Location::stage(*s)),
    };
    Violation::new(check, location, e.to_string())
}

/// Maps a [`ScheduleError`] (from `validate_c4`) to its catalog violation.
pub fn violation_of_schedule_error(e: &ScheduleError) -> Violation {
    let (check, location) = match e {
        ScheduleError::ForwardOrder(s) => (Check::ForwardOrder, Location::stage(*s)),
        ScheduleError::BackwardOrder(s) => (Check::BackwardOrder, Location::stage(*s)),
        ScheduleError::BackwardBeforeForward(s, mb) => (
            Check::BackwardAfterForward,
            Location::stage(*s).at_task(*mb, Pass::Backward),
        ),
        ScheduleError::WrongTaskCount(s) => (Check::TaskMultiset, Location::stage(*s)),
    };
    Violation::new(check, location, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_cluster::DeviceRange;
    use gp_ir::zoo;
    use gp_partition::{GraphPipePlanner, Planner};
    use gp_sched::{schedule_tasks, StageSchedule, Task};

    fn chain_plan() -> (SpModel, Cluster, Plan) {
        let model = zoo::mlp_chain(4, 16);
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        (model, cluster, plan)
    }

    /// A hand-assembled two-stage pipeline (no planner): guarantees an
    /// upstream stage with warm-up >= 2 and stash head-room, which the
    /// planner's preferred strategy for a small chain may not exhibit.
    fn two_stage_plan(mini_batch: u64, micro_batch: u64) -> (SpModel, Cluster, Plan) {
        let model = zoo::mlp_chain(2, 8);
        let cluster = Cluster::summit_like(2);
        let ops = model.linearize();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: ops[..3].to_vec(),
                devices: DeviceRange::new(0, 1),
                micro_batch,
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: ops[3..].to_vec(),
                devices: DeviceRange::new(1, 1),
                micro_batch,
                kfkb: 1,
            },
        ];
        let sg = StageGraph::new(model.graph(), &cluster, stages, mini_batch).unwrap();
        let in_flight = assign_in_flight(&sg);
        let schedule = schedule_tasks(&sg, &in_flight);
        let mut plan = Plan {
            stage_graph: sg,
            in_flight,
            schedule,
            bottleneck_tps: 0.0,
            peak_memory_bytes: 0,
            path: gp_ir::PlanPath::ExactSp,
            stats: gp_partition::SearchStats::default(),
        };
        let cost = CostModel::new(&cluster);
        let (tps, mem) = plan.measure(model.graph(), &cost);
        plan.bottleneck_tps = tps;
        plan.peak_memory_bytes = mem;
        (model, cluster, plan)
    }

    #[test]
    fn hand_assembled_plan_verifies_clean() {
        let (model, cluster, plan) = two_stage_plan(16, 4);
        let report = verify_strategy(&model, &cluster, &plan);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn planner_output_verifies_clean() {
        let (model, cluster, plan) = chain_plan();
        let report = verify_strategy(&model, &cluster, &plan);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn branching_model_verifies_clean() {
        let model = zoo::candle_uno(&zoo::CandleUnoConfig::tiny());
        let cluster = Cluster::summit_like(4);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 32).unwrap();
        let report = verify_strategy(&model, &cluster, &plan);
        assert!(report.is_clean(), "{report}");
    }

    /// Hand-built raw stage list with every placement defect at once: the
    /// report must name each violated invariant.
    #[test]
    fn raw_stage_defects_are_all_named() {
        let model = zoo::mlp_chain(4, 16);
        let g = model.graph();
        let cluster = Cluster::summit_like(4);
        let ops = model.linearize();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: ops[..2].to_vec(), // leaves the rest uncovered
                devices: DeviceRange::new(0, 2),
                micro_batch: 3, // does not divide 32
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: ops[..2].to_vec(),          // duplicates stage 0's ops
                devices: DeviceRange::new(1, 4), // overlaps + out of bounds
                micro_batch: 4,
                kfkb: 0, // empty-stage defect
            },
        ];
        let report = verify_stages(g, &cluster, &stages, 32);
        for check in [
            Check::MicroBatchDivides,
            Check::StageNonEmpty,
            Check::OpCoverExact,
            Check::DeviceBounds,
            Check::DeviceOverlap,
            Check::DeviceCoverage,
        ] {
            assert!(report.violates(check), "missing {check}:\n{report}");
        }
    }

    #[test]
    fn zero_mini_batch_is_named() {
        let model = zoo::mlp_chain(2, 8);
        let cluster = Cluster::summit_like(1);
        let ops = model.linearize();
        let stages = vec![Stage {
            id: StageId(0),
            ops,
            devices: DeviceRange::new(0, 1),
            micro_batch: 2,
            kfkb: 1,
        }];
        let report = verify_stages(model.graph(), &cluster, &stages, 0);
        assert!(report.violates(Check::MiniBatchPositive), "{report}");
    }

    #[test]
    fn non_convex_stage_is_named() {
        let model = zoo::mlp_chain(2, 8);
        let g = model.graph();
        let cluster = Cluster::summit_like(2);
        let ops = model.linearize();
        let mut s0 = vec![ops[0], ops[2]];
        let mut s1 = vec![ops[1]];
        s1.extend_from_slice(&ops[3..]);
        s0.sort();
        s1.sort();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: s0,
                devices: DeviceRange::new(0, 1),
                micro_batch: 2,
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: s1,
                devices: DeviceRange::new(1, 1),
                micro_batch: 2,
                kfkb: 1,
            },
        ];
        let report = verify_stages(g, &cluster, &stages, 8);
        assert!(report.violates(Check::OpConvex), "{report}");
        assert!(report.violates(Check::StageAcyclic), "{report}");
    }

    #[test]
    fn schedule_defects_are_named() {
        let (_, _, plan) = two_stage_plan(16, 4);
        let sg = &plan.stage_graph;

        // Dropped task order.
        let mut sched = plan.schedule.clone();
        sched.per_stage.pop();
        assert!(verify_schedule(sg, &sched).violates(Check::ScheduleCoverage));

        // Swapped warm-up forwards (C4 order) on a stage with warmup >= 2.
        let mut sched = plan.schedule.clone();
        let victim = sched
            .per_stage
            .iter_mut()
            .find(|s| s.warmup >= 2)
            .expect("an upstream stage warms up at least 2");
        victim.tasks.swap(0, 1);
        assert!(verify_schedule(sg, &sched).violates(Check::ForwardOrder));

        // Dropped trailing backward: wrong multiset.
        let mut sched = plan.schedule.clone();
        sched.per_stage[0].tasks.pop();
        assert!(verify_schedule(sg, &sched).violates(Check::TaskMultiset));

        // Backward before its forward.
        let mut sched = plan.schedule.clone();
        let tasks = &mut sched.per_stage[0].tasks;
        let last = tasks.len() - 1;
        tasks.swap(0, last); // B(m-1) first, F(0) last
        let report = verify_schedule(sg, &sched);
        assert!(report.violates(Check::BackwardAfterForward), "{report}");

        // Inflated warm-up record.
        let mut sched = plan.schedule.clone();
        sched.per_stage[0].warmup += 1;
        assert!(verify_schedule(sg, &sched).violates(Check::WarmupConsistent));
    }

    /// Two C4-valid stage orders that deadlock against each other: S0 wants
    /// B(0) before F(1), but S1 backs up B(0) behind F(1) which needs S0's
    /// F(1). Only the topological certificate catches this.
    #[test]
    fn deadlock_certificate_catches_crossed_orders() {
        let model = zoo::mlp_chain(2, 8);
        let cluster = Cluster::summit_like(2);
        let ops = model.linearize();
        let stages = vec![
            Stage {
                id: StageId(0),
                ops: ops[..3].to_vec(),
                devices: DeviceRange::new(0, 1),
                micro_batch: 4,
                kfkb: 1,
            },
            Stage {
                id: StageId(1),
                ops: ops[3..].to_vec(),
                devices: DeviceRange::new(1, 1),
                micro_batch: 4,
                kfkb: 1,
            },
        ];
        let sg = StageGraph::new(model.graph(), &cluster, stages, 8).unwrap();
        let f = |mb| Task {
            pass: Pass::Forward,
            mb,
        };
        let b = |mb| Task {
            pass: Pass::Backward,
            mb,
        };
        let deadlocked = PipelineSchedule {
            per_stage: vec![
                StageSchedule {
                    stage: StageId(0),
                    warmup: 1,
                    tasks: vec![f(0), b(0), f(1), b(1)],
                },
                StageSchedule {
                    stage: StageId(1),
                    warmup: 2,
                    tasks: vec![f(0), f(1), b(0), b(1)],
                },
            ],
        };
        // Both orders satisfy C4 in isolation...
        deadlocked.validate_c4(&sg).unwrap();
        // ...but the cross-stage dependency graph is cyclic.
        let report = verify_schedule(&sg, &deadlocked);
        assert!(report.violates(Check::DeadlockFree), "{report}");
        // The working order (enough warm-up upstream) proves clean.
        let fine = schedule_tasks(&sg, &assign_in_flight(&sg));
        assert!(verify_schedule(&sg, &fine).is_clean());
    }

    #[test]
    fn plan_level_defects_are_named() {
        let (model, cluster, plan) = chain_plan();
        let g = model.graph();

        // Corrupted in-flight table.
        let mut bad = plan.clone();
        let mut samples: Vec<u64> = bad
            .stage_graph
            .stages()
            .map(|s| bad.in_flight.samples(s.id))
            .collect();
        samples[0] += 1;
        bad.in_flight = gp_sched::InFlightTable::from_samples(samples);
        assert!(verify_plan(g, &cluster, &bad).violates(Check::InFlightConsistent));

        // Truncated in-flight table.
        let mut bad = plan.clone();
        bad.in_flight = gp_sched::InFlightTable::from_samples(vec![4]);
        if bad.stage_graph.len() > 1 {
            assert!(verify_plan(g, &cluster, &bad).violates(Check::InFlightConsistent));
        }

        // Drifted TPS estimate.
        let mut bad = plan.clone();
        bad.bottleneck_tps *= 1.0 + 1e-12;
        assert!(verify_plan(g, &cluster, &bad).violates(Check::EstimateConsistent));

        // Drifted memory estimate.
        let mut bad = plan.clone();
        bad.peak_memory_bytes += 1;
        assert!(verify_plan(g, &cluster, &bad).violates(Check::EstimateConsistent));

        // Non-finite estimate.
        let mut bad = plan.clone();
        bad.bottleneck_tps = f64::NAN;
        assert!(verify_plan(g, &cluster, &bad).violates(Check::EstimateFinite));
    }

    #[test]
    fn stash_bound_catches_oversized_schedule() {
        let (model, cluster, plan) = two_stage_plan(16, 4);
        let g = model.graph();
        // Rebuild stage 0's order with twice the warm-up: C4 still holds,
        // in-flight table still matches the graph, but the realized stash
        // exceeds the budget.
        let mut bad = plan.clone();
        let s0 = &bad.stage_graph.stage(StageId(0)).clone();
        let m = s0.num_micro_batches(bad.stage_graph.mini_batch());
        let budget = bad.in_flight.micro_batches(&bad.stage_graph, StageId(0));
        assert!(budget < m, "need head-room to oversubscribe");
        bad.schedule.per_stage[0] = StageSchedule::kfkb(StageId(0), m, budget + 1, s0.kfkb);
        let report = verify_plan(g, &cluster, &bad);
        assert!(report.violates(Check::StashBound), "{report}");
    }

    #[test]
    fn memory_budget_catches_tiny_cluster() {
        let (model, cluster, plan) = chain_plan();
        // Same plan, but judged against devices with 1 KiB of memory.
        let tiny = cluster.with_memory_capacity(1 << 10);
        let report = verify_plan(model.graph(), &tiny, &plan);
        assert!(report.violates(Check::MemoryBudget), "{report}");
        // The estimates were computed against the real cluster, so they
        // drift too — but memory-budget must be named independently.
        assert!(!report.is_clean());
    }

    #[test]
    fn error_mappers_cover_every_variant() {
        use gp_ir::OpId;
        let cases = [
            (
                violation_of_stage_graph_error(&StageGraphError::NotAPartition(OpId(3))),
                Check::OpCoverExact,
            ),
            (
                violation_of_stage_graph_error(&StageGraphError::NotConvex(StageId(1))),
                Check::OpConvex,
            ),
            (
                violation_of_stage_graph_error(&StageGraphError::CyclicStages),
                Check::StageAcyclic,
            ),
            (
                violation_of_stage_graph_error(&StageGraphError::DeviceOverlap(
                    StageId(0),
                    StageId(1),
                )),
                Check::DeviceOverlap,
            ),
            (
                violation_of_stage_graph_error(&StageGraphError::DeviceCoverage {
                    assigned: 2,
                    available: 4,
                }),
                Check::DeviceCoverage,
            ),
            (
                violation_of_stage_graph_error(&StageGraphError::BadMicroBatch(StageId(2))),
                Check::MicroBatchDivides,
            ),
            (
                violation_of_stage_graph_error(&StageGraphError::EmptyStage(StageId(2))),
                Check::StageNonEmpty,
            ),
            (
                violation_of_schedule_error(&ScheduleError::ForwardOrder(StageId(0))),
                Check::ForwardOrder,
            ),
            (
                violation_of_schedule_error(&ScheduleError::BackwardOrder(StageId(0))),
                Check::BackwardOrder,
            ),
            (
                violation_of_schedule_error(&ScheduleError::BackwardBeforeForward(StageId(0), 2)),
                Check::BackwardAfterForward,
            ),
            (
                violation_of_schedule_error(&ScheduleError::WrongTaskCount(StageId(0))),
                Check::TaskMultiset,
            ),
        ];
        for (violation, expected) in cases {
            assert_eq!(violation.check, expected, "{violation}");
            assert!(!violation.detail.is_empty());
        }
    }
}
