//! `gp-verify` — static plan/schedule invariant verifier.
//!
//! GraphPipe's correctness argument rests on properties that are *decided
//! before execution*: the partition covers the graph with convex stages
//! (C1), stage edges follow data flow (C2), device ranges tile the cluster
//! (C3), per-stage task orders are well-formed (C4), the in-flight table
//! matches the `ComputeInFlight` recursion, Equation 2's memory bound
//! holds per device, and the fixed per-device schedules admit at least one
//! execution (deadlock freedom). This crate re-proves all of them from the
//! serialized data alone — no simulation, no planner re-run — and reports
//! failures as named violations with precise locations.
//!
//! The full catalog lives in DESIGN.md §"Invariant catalog"; each
//! [`Check`] variant's doc comment names its entry. Entry points:
//!
//! - [`verify_stages`] — raw stage lists, before a `StageGraph` exists
//!   (the codec's first line of defense);
//! - [`verify_stage_graph`] — a constructed or deserialized [`StageGraph`];
//! - [`verify_schedule`] — a [`PipelineSchedule`] against its stage graph,
//!   including the topological deadlock certificate;
//! - [`verify_plan`] — a complete [`Plan`] including in-flight, memory,
//!   and estimate consistency;
//! - [`verify_strategy`] — a plan against its source [`SpModel`], the
//!   check `Session::plan` and `Session::load_artifact` run.
//!
//! All entry points return a [`VerifyReport`]; convert to a hard error
//! with [`VerifyReport::into_result`]. The checks themselves iterate only
//! ordered structures (no `HashMap` walks), so a verification run is
//! bit-deterministic — the same discipline `cargo xtask lint` enforces on
//! the fingerprint and codec modules.
//!
//! [`StageGraph`]: gp_sched::StageGraph
//! [`PipelineSchedule`]: gp_sched::PipelineSchedule
//! [`Plan`]: gp_partition::Plan
//! [`SpModel`]: gp_ir::SpModel

mod checks;
mod report;

pub use checks::{
    verify_plan, verify_schedule, verify_stage_graph, verify_stages, verify_strategy,
    violation_of_schedule_error, violation_of_stage_graph_error,
};
pub use report::{Check, Location, VerifyError, VerifyReport, Violation};
