//! Violation vocabulary: the check catalog, locations, and the report.
//!
//! Every invariant `gp-verify` enforces is a [`Check`] variant with a
//! stable kebab-case [`Check::name`]. The names are the contract shared
//! with DESIGN.md §"Invariant catalog" (each variant's doc comment cites
//! its catalog entry), with the artifact codec's error messages, and with
//! the mutation test suite — renaming one is a breaking change.

use gp_cluster::DeviceId;
use gp_cost::Pass;
use gp_ir::OpId;
use gp_sched::StageId;
use std::fmt;

/// One invariant in the catalog.
///
/// The variants follow the order of DESIGN.md §"Invariant catalog":
/// strategy-structure checks first, then placement, schedule, memory, and
/// fingerprint-stability checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    /// `mini-batch-positive` — the strategy processes a positive
    /// mini-batch (DESIGN.md §"Invariant catalog").
    MiniBatchPositive,
    /// `stage-ids-dense` — stage ids are `0..n` in storage order
    /// (DESIGN.md §"Invariant catalog").
    StageIdsDense,
    /// `stage-nonempty` — every stage holds at least one operator and has
    /// `kfkb >= 1` (DESIGN.md §"Invariant catalog").
    StageNonEmpty,
    /// `micro-batch-divides` — every stage's micro-batch size is positive
    /// and divides the mini-batch size (DESIGN.md §"Invariant catalog").
    MicroBatchDivides,
    /// `op-cover-exact` — the stages' operator sets cover the model graph
    /// exactly once: condition C1's partition half (DESIGN.md §"Invariant
    /// catalog").
    OpCoverExact,
    /// `op-convex` — every stage's operator set is a convex subgraph:
    /// condition C1's convexity half (DESIGN.md §"Invariant catalog").
    OpConvex,
    /// `device-bounds` — every assigned device exists in the cluster
    /// (DESIGN.md §"Invariant catalog").
    DeviceBounds,
    /// `device-overlap` — no two stages share a device: condition C3's
    /// disjointness half (DESIGN.md §"Invariant catalog").
    DeviceOverlap,
    /// `device-coverage` — stage device ranges cover the cluster exactly:
    /// condition C3's coverage half (DESIGN.md §"Invariant catalog").
    DeviceCoverage,
    /// `stage-acyclic` — the data-derived stage DAG admits a topological
    /// order (DESIGN.md §"Invariant catalog").
    StageAcyclic,
    /// `edge-derivation` — the recorded stage edges contain every
    /// data-derived edge (condition C2) and any extra edge is an imposed
    /// sequential-chain edge (DESIGN.md §"Invariant catalog").
    EdgeDerivation,
    /// `in-flight-consistent` — the recorded in-flight table equals the
    /// `ComputeInFlight` recomputation over the stage graph (DESIGN.md
    /// §"Invariant catalog").
    InFlightConsistent,
    /// `schedule-coverage` — the schedule provides exactly one task order
    /// per stage, in stage-id order (DESIGN.md §"Invariant catalog").
    ScheduleCoverage,
    /// `task-multiset` — each stage's order runs every micro-batch's
    /// forward and backward exactly once (DESIGN.md §"Invariant catalog").
    TaskMultiset,
    /// `forward-order` — forward passes run in micro-batch order:
    /// condition C4 (DESIGN.md §"Invariant catalog").
    ForwardOrder,
    /// `backward-order` — backward passes run in micro-batch order:
    /// condition C4 (DESIGN.md §"Invariant catalog").
    BackwardOrder,
    /// `backward-after-forward` — no backward precedes its own forward:
    /// condition C4 (DESIGN.md §"Invariant catalog").
    BackwardAfterForward,
    /// `warmup-consistent` — a stage's recorded warm-up length equals its
    /// leading forward run (DESIGN.md §"Invariant catalog").
    WarmupConsistent,
    /// `stash-bound` — a stage's realized peak in-flight samples never
    /// exceed what its in-flight table entry budgets (DESIGN.md
    /// §"Invariant catalog").
    StashBound,
    /// `deadlock-free` — the cross-stage task dependency graph admits a
    /// topological certificate, so the schedule cannot deadlock (DESIGN.md
    /// §"Invariant catalog").
    DeadlockFree,
    /// `memory-budget` — every stage fits the per-device memory budget,
    /// Equation 2 (DESIGN.md §"Invariant catalog").
    MemoryBudget,
    /// `estimate-consistent` — the recorded bottleneck TPS and peak memory
    /// equal their cost-model recomputation bit-exactly; both feed the
    /// plan fingerprint (DESIGN.md §"Invariant catalog").
    EstimateConsistent,
    /// `estimate-finite` — the fingerprinted float estimates are finite
    /// and non-negative, so fingerprint equality keeps implying value
    /// equality (DESIGN.md §"Invariant catalog").
    EstimateFinite,
    /// `sp-cover-exact` — the SP tree names every graph operator exactly
    /// once (DESIGN.md §"Invariant catalog").
    SpCoverExact,
    /// `sp-topo-order` — the SP tree's series linearization is a
    /// topological order of the graph (DESIGN.md §"Invariant catalog").
    SpTopoOrder,
    /// `sp-edge-cover` — the SP tree admits every data edge of the graph
    /// (no edge is lost across branches or reversed along a chain), so an
    /// SP-ized plan covers the original dependency set (DESIGN.md
    /// §"Invariant catalog").
    SpEdgeCover,
    /// `distortion-exact` — an `SpIzed` plan path's reported distortion
    /// equals the transit volume recomputed from the graph and tree
    /// (DESIGN.md §"Invariant catalog").
    DistortionExact,
    /// `plan-path-consistent` — the plan's recorded `PlanPath` equals the
    /// model's, and a `Clustered` unit count is sane for the graph
    /// (DESIGN.md §"Invariant catalog").
    PlanPathConsistent,
}

impl Check {
    /// The stable kebab-case name, as listed in DESIGN.md §"Invariant
    /// catalog".
    pub fn name(self) -> &'static str {
        match self {
            Check::MiniBatchPositive => "mini-batch-positive",
            Check::StageIdsDense => "stage-ids-dense",
            Check::StageNonEmpty => "stage-nonempty",
            Check::MicroBatchDivides => "micro-batch-divides",
            Check::OpCoverExact => "op-cover-exact",
            Check::OpConvex => "op-convex",
            Check::DeviceBounds => "device-bounds",
            Check::DeviceOverlap => "device-overlap",
            Check::DeviceCoverage => "device-coverage",
            Check::StageAcyclic => "stage-acyclic",
            Check::EdgeDerivation => "edge-derivation",
            Check::InFlightConsistent => "in-flight-consistent",
            Check::ScheduleCoverage => "schedule-coverage",
            Check::TaskMultiset => "task-multiset",
            Check::ForwardOrder => "forward-order",
            Check::BackwardOrder => "backward-order",
            Check::BackwardAfterForward => "backward-after-forward",
            Check::WarmupConsistent => "warmup-consistent",
            Check::StashBound => "stash-bound",
            Check::DeadlockFree => "deadlock-free",
            Check::MemoryBudget => "memory-budget",
            Check::EstimateConsistent => "estimate-consistent",
            Check::EstimateFinite => "estimate-finite",
            Check::SpCoverExact => "sp-cover-exact",
            Check::SpTopoOrder => "sp-topo-order",
            Check::SpEdgeCover => "sp-edge-cover",
            Check::DistortionExact => "distortion-exact",
            Check::PlanPathConsistent => "plan-path-consistent",
        }
    }

    /// Every check in the catalog, in DESIGN.md order. The doc-sync test
    /// and the CI smoke iterate this to keep code and catalog aligned.
    pub fn all() -> &'static [Check] {
        &[
            Check::MiniBatchPositive,
            Check::StageIdsDense,
            Check::StageNonEmpty,
            Check::MicroBatchDivides,
            Check::OpCoverExact,
            Check::OpConvex,
            Check::DeviceBounds,
            Check::DeviceOverlap,
            Check::DeviceCoverage,
            Check::StageAcyclic,
            Check::EdgeDerivation,
            Check::InFlightConsistent,
            Check::ScheduleCoverage,
            Check::TaskMultiset,
            Check::ForwardOrder,
            Check::BackwardOrder,
            Check::BackwardAfterForward,
            Check::WarmupConsistent,
            Check::StashBound,
            Check::DeadlockFree,
            Check::MemoryBudget,
            Check::EstimateConsistent,
            Check::EstimateFinite,
            Check::SpCoverExact,
            Check::SpTopoOrder,
            Check::SpEdgeCover,
            Check::DistortionExact,
            Check::PlanPathConsistent,
        ]
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a violation was found: any combination of stage, device,
/// operator, and task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Location {
    /// The offending stage, if the violation is stage-scoped.
    pub stage: Option<StageId>,
    /// The offending device, if the violation is device-scoped.
    pub device: Option<DeviceId>,
    /// The offending operator, if the violation is operator-scoped.
    pub op: Option<OpId>,
    /// The offending task instance `(micro-batch, pass)`, if any.
    pub task: Option<(u32, Pass)>,
}

impl Location {
    /// An empty (strategy-global) location.
    pub fn global() -> Location {
        Location::default()
    }

    /// A stage-scoped location.
    pub fn stage(stage: StageId) -> Location {
        Location {
            stage: Some(stage),
            ..Location::default()
        }
    }

    /// Adds a device to the location, builder style.
    pub fn on_device(mut self, device: DeviceId) -> Location {
        self.device = Some(device);
        self
    }

    /// Adds an operator to the location, builder style.
    pub fn at_op(mut self, op: OpId) -> Location {
        self.op = Some(op);
        self
    }

    /// Adds a task instance to the location, builder style.
    pub fn at_task(mut self, mb: u32, pass: Pass) -> Location {
        self.task = Some((mb, pass));
        self
    }
}

impl fmt::Display for Location {
    /// Prints `stage S2, device gpu5, op o7, F(3)` with only the present
    /// parts, or `strategy` when the location is global.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        let sep = |f: &mut fmt::Formatter<'_>, wrote: &mut bool| -> fmt::Result {
            if *wrote {
                write!(f, ", ")?;
            }
            *wrote = true;
            Ok(())
        };
        if let Some(s) = self.stage {
            sep(f, &mut wrote)?;
            write!(f, "stage {s}")?;
        }
        if let Some(d) = self.device {
            sep(f, &mut wrote)?;
            write!(f, "device {d}")?;
        }
        if let Some(o) = self.op {
            sep(f, &mut wrote)?;
            write!(f, "op {o}")?;
        }
        if let Some((mb, pass)) = self.task {
            sep(f, &mut wrote)?;
            let dir = match pass {
                Pass::Forward => 'F',
                Pass::Backward => 'B',
            };
            write!(f, "{dir}({mb})")?;
        }
        if !wrote {
            write!(f, "strategy")?;
        }
        Ok(())
    }
}

/// One named invariant violation with its location and a human-readable
/// detail.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated catalog entry.
    pub check: Check,
    /// Where the violation sits.
    pub location: Location,
    /// What exactly went wrong (values, expectations).
    pub detail: String,
}

impl Violation {
    /// Builds a violation.
    pub fn new(check: Check, location: Location, detail: impl Into<String>) -> Violation {
        Violation {
            check,
            location,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated at {}: {}",
            self.check, self.location, self.detail
        )
    }
}

/// The outcome of a verification pass: every violation found, in check
/// order (the pass itself is deterministic, so so is the report).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    violations: Vec<Violation>,
}

impl VerifyReport {
    /// An empty (clean) report.
    pub fn new() -> VerifyReport {
        VerifyReport::default()
    }

    /// Records a violation.
    pub fn push(&mut self, violation: Violation) {
        self.violations.push(violation);
    }

    /// Records a violation from its parts.
    pub fn fail(&mut self, check: Check, location: Location, detail: impl Into<String>) {
        self.push(Violation::new(check, location, detail));
    }

    /// Whether no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found, in discovery order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The first violation, if any — the one error paths name.
    pub fn first(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// Whether the report contains a violation of `check`.
    pub fn violates(&self, check: Check) -> bool {
        self.violations.iter().any(|v| v.check == check)
    }

    /// Merges another report's violations into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.violations.extend(other.violations);
    }

    /// Converts the report into a `Result`: `Ok(())` when clean,
    /// [`VerifyError`] carrying the full report otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when at least one invariant is violated.
    pub fn into_result(self) -> Result<(), VerifyError> {
        if self.is_clean() {
            Ok(())
        } else {
            Err(VerifyError { report: self })
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "all invariants hold");
        }
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// A failed verification, carrying the full [`VerifyReport`].
///
/// `Display` leads with the first violation (the one a user should read
/// first) and counts the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    report: VerifyReport,
}

impl VerifyError {
    /// The full report behind this error.
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// The first violation — every `VerifyError` has at least one.
    pub fn violation(&self) -> &Violation {
        self.report
            .first()
            .expect("VerifyError is only built from non-clean reports")
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rest = self.report.violations().len() - 1;
        write!(f, "{}", self.violation())?;
        if rest > 0 {
            write!(f, " (+{rest} more)")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_names_are_unique_and_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for &c in Check::all() {
            assert!(seen.insert(c.name()), "duplicate check name {}", c.name());
            assert!(
                c.name()
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch == '-'),
                "{} is not kebab-case",
                c.name()
            );
            assert_eq!(c.to_string(), c.name());
        }
    }

    /// Doc-sync: every check name appears (backticked) in DESIGN.md
    /// §"Invariant catalog", in `Check::all()` order, so the rustdoc
    /// cross-references cannot rot.
    #[test]
    fn every_check_is_cataloged_in_design_md() {
        let design = include_str!("../../../DESIGN.md");
        let catalog = &design[design
            .find("## Invariant catalog")
            .expect("DESIGN.md must keep an \"Invariant catalog\" section")..];
        let mut cursor = 0;
        for &c in Check::all() {
            let needle = format!("`{}`", c.name());
            let at = catalog[cursor..]
                .find(&needle)
                .unwrap_or_else(|| panic!("{needle} missing or out of order in the catalog"));
            cursor += at + needle.len();
        }
    }

    #[test]
    fn locations_render_compactly() {
        assert_eq!(Location::global().to_string(), "strategy");
        let loc = Location::stage(StageId(2))
            .on_device(DeviceId(5))
            .at_task(3, Pass::Backward);
        assert_eq!(loc.to_string(), "stage S2, device gpu5, B(3)");
    }

    #[test]
    fn report_collects_and_errors() {
        let mut r = VerifyReport::new();
        assert!(r.is_clean());
        assert!(r.clone().into_result().is_ok());
        r.fail(Check::MemoryBudget, Location::stage(StageId(0)), "over");
        r.fail(Check::EstimateFinite, Location::global(), "NaN");
        assert!(!r.is_clean());
        assert!(r.violates(Check::MemoryBudget));
        assert!(!r.violates(Check::DeadlockFree));
        let err = r.into_result().unwrap_err();
        assert_eq!(err.violation().check, Check::MemoryBudget);
        let text = err.to_string();
        assert!(text.contains("memory-budget"), "{text}");
        assert!(text.contains("+1 more"), "{text}");
    }
}
