//! The bench-trajectory gate: `cargo xtask bench-check [--fresh <file>]`.
//!
//! BENCH_planner.json is a committed artifact, but until this gate existed
//! it was write-only: nothing noticed when a code change silently shifted
//! plan fingerprints or regressed search wall time. This subcommand
//! compares a fresh `planner_profile` sweep against the committed file,
//! cell by cell:
//!
//! * **fingerprints must match exactly** — a mismatch means the planner's
//!   output changed for a committed cell, which is either an unreviewed
//!   plan-quality change or a determinism bug; both should fail CI;
//! * **wall regressions beyond 1.5x fail** — wall clock is noisy across
//!   machines (±15% on the bench box alone), so the threshold is loose;
//!   it exists to catch order-of-magnitude search blowups, not to pin
//!   milliseconds. Improvements never fail.
//!
//! Without `--fresh`, the subcommand runs the release `planner_profile`
//! binary itself (building it if needed) and compares its output; with
//! `--fresh <file>` it compares an existing sweep JSON, which is what you
//! want when regenerating the baseline by hand.
//!
//! Cells are keyed by (model, gpus, beam_width, warm_start). Every
//! committed cell must appear in the fresh sweep — a missing cell fails,
//! because a silently dropped cell is exactly the "write-only trajectory"
//! failure mode this gate exists to prevent. Extra fresh cells (new
//! models, new scales) are reported but never fail: the baseline is
//! updated by committing the fresh file, not by editing this check.
//!
//! gp-lint: deterministic — this module gates on plan-fingerprint
//! equality; `cargo xtask lint` scans it for nondeterminism hazards
//! (DESIGN.md §"Determinism lint").

use gp_serve::json::Json;
use std::process::ExitCode;

/// Wall-clock regression tolerance: fresh > committed * 1.5 fails.
const WALL_REGRESSION_LIMIT: f64 = 1.5;

/// One sweep cell, keyed and compared.
struct Cell {
    model: String,
    gpus: u64,
    /// 0 = unbounded (the emitter writes 0 for `None`); absent in
    /// pre-beam baselines, which also means unbounded.
    beam_width: u64,
    warm_start: bool,
    wall_secs: f64,
    fingerprint: String,
}

impl Cell {
    fn key(&self) -> (String, u64, u64, bool) {
        (
            self.model.clone(),
            self.gpus,
            self.beam_width,
            self.warm_start,
        )
    }

    fn label(&self) -> String {
        format!(
            "{}@{}{}{}",
            self.model,
            self.gpus,
            if self.beam_width == 0 {
                String::new()
            } else {
                format!(" beam={}", self.beam_width)
            },
            if self.warm_start { " warm" } else { "" }
        )
    }
}

fn load_cells(path: &std::path::Path) -> Result<Vec<Cell>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: no `cells` array", path.display()))?;
    let mut out = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let field = |key: &str| {
            cell.get(key)
                .ok_or_else(|| format!("{}: cell {i} missing `{key}`", path.display()))
        };
        out.push(Cell {
            model: field("model")?
                .as_str()
                .ok_or_else(|| format!("cell {i}: `model` not a string"))?
                .to_string(),
            gpus: field("gpus")?
                .as_u64()
                .ok_or_else(|| format!("cell {i}: `gpus` not an integer"))?,
            beam_width: cell.get("beam_width").and_then(Json::as_u64).unwrap_or(0),
            warm_start: matches!(cell.get("warm_start"), Some(Json::Bool(true))),
            wall_secs: field("wall_secs")?
                .as_f64()
                .ok_or_else(|| format!("cell {i}: `wall_secs` not a number"))?,
            fingerprint: field("fingerprint")?
                .as_str()
                .ok_or_else(|| format!("cell {i}: `fingerprint` not a string"))?
                .to_string(),
        });
    }
    Ok(out)
}

/// Runs the release `planner_profile` sweep into a temp file and returns
/// the path. Builds via cargo so a stale or missing binary cannot produce
/// a sweep from old code.
fn run_fresh_sweep(out_path: &std::path::Path) -> Result<(), String> {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(crate::repo_root())
        .args([
            "run",
            "--release",
            "--package",
            "gp-bench",
            "--bin",
            "planner_profile",
            "--",
        ])
        .arg("--out")
        .arg(out_path)
        .status()
        .map_err(|e| format!("failed to spawn cargo: {e}"))?;
    if !status.success() {
        return Err(format!("planner_profile exited with {status}"));
    }
    Ok(())
}

pub fn run(args: &[String]) -> ExitCode {
    let committed_path = crate::repo_root().join("BENCH_planner.json");
    let fresh_path = match args {
        [] => {
            let tmp = std::env::temp_dir().join("bench_check_fresh.json");
            if let Err(e) = run_fresh_sweep(&tmp) {
                eprintln!("bench-check: {e}");
                return ExitCode::FAILURE;
            }
            tmp
        }
        [flag, path] if flag == "--fresh" => std::path::PathBuf::from(path),
        _ => {
            eprintln!("usage: cargo xtask bench-check [--fresh <sweep.json>]");
            return ExitCode::FAILURE;
        }
    };

    let (committed, fresh) = match (load_cells(&committed_path), load_cells(&fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (c, f) => {
            for e in [c.err(), f.err()].into_iter().flatten() {
                eprintln!("bench-check: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let mut matched = 0usize;
    for base in &committed {
        let Some(new) = fresh.iter().find(|c| c.key() == base.key()) else {
            eprintln!(
                "FAIL {:<28} committed cell missing from fresh sweep",
                base.label()
            );
            failures += 1;
            continue;
        };
        matched += 1;
        if new.fingerprint != base.fingerprint {
            eprintln!(
                "FAIL {:<28} fingerprint drift: committed {} fresh {}",
                base.label(),
                base.fingerprint,
                new.fingerprint
            );
            failures += 1;
            continue;
        }
        let ratio = new.wall_secs / base.wall_secs;
        if ratio > WALL_REGRESSION_LIMIT {
            eprintln!(
                "FAIL {:<28} wall regression {ratio:.2}x ({:.3}s -> {:.3}s, limit {WALL_REGRESSION_LIMIT}x)",
                base.label(),
                base.wall_secs,
                new.wall_secs
            );
            failures += 1;
        } else {
            println!(
                "ok   {:<28} fp match, wall {ratio:.2}x ({:.3}s -> {:.3}s)",
                base.label(),
                base.wall_secs,
                new.wall_secs
            );
        }
    }
    for new in &fresh {
        if !committed.iter().any(|c| c.key() == new.key()) {
            println!(
                "new  {:<28} not in committed baseline ({:.3}s, fp {})",
                new.label(),
                new.wall_secs,
                new.fingerprint
            );
        }
    }

    println!(
        "bench-check: {matched}/{} committed cells matched, {failures} failure(s)",
        committed.len()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
