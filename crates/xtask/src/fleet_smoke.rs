//! `cargo xtask fleet-smoke` — end-to-end check of the distributed
//! serving layer's determinism contract.
//!
//! Boots a loopback TCP planner worker, points a two-shard store-backed
//! [`FleetService`] at it, round-trips three zoo models through the wire
//! protocol, and asserts the served artifact is byte-identical to one
//! planned in-process. Then reopens the store and checks the warm restart
//! serves every request from disk with zero planner runs. CI runs this as
//! part of the `test` job; it is the cheap always-on version of the
//! `tests/fleet.rs` integration suite.

use gp_cluster::Cluster;
use gp_fleet::{
    canonical_artifact, plan_locally, AdmissionConfig, FleetConfig, FleetService, Served,
    TenantClass, TenantSpec,
};
use gp_ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig};
use gp_obs::Telemetry;
use gp_serve::PlanRequest;
use std::process::ExitCode;
use std::sync::Arc;

/// Three zoo models at test scale — one chain-heavy, one wide, one deep.
fn requests() -> Vec<PlanRequest> {
    let cluster = Cluster::summit_like(4);
    [
        (zoo::mmt(&MmtConfig::tiny()), 32),
        (zoo::dlrm(&DlrmConfig::tiny()), 64),
        (zoo::candle_uno(&CandleUnoConfig::tiny()), 32),
    ]
    .into_iter()
    .map(|(model, mini_batch)| PlanRequest::new(Arc::new(model), cluster.clone(), mini_batch))
    .collect()
}

pub fn run() -> ExitCode {
    let dir = std::env::temp_dir().join(format!("gp-fleet-smoke-{}", std::process::id()));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let result = smoke(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(()) => {
            println!("fleet-smoke: OK");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("fleet-smoke: {message}");
            ExitCode::FAILURE
        }
    }
}

fn smoke(dir: &std::path::Path) -> Result<(), String> {
    let mut server = gp_fleet::WorkerServer::bind("127.0.0.1:0", Telemetry::disabled())
        .map_err(|e| format!("bind loopback worker: {e}"))?;
    let config = || FleetConfig {
        shards: 2,
        local_workers: 0,
        remote_workers: vec![server.addr().to_string()],
        store: Some(dir.to_path_buf()),
        admission: AdmissionConfig {
            // Premium passes options through unrewritten, so the fleet
            // plans exactly the request `plan_locally` sees.
            default_spec: TenantSpec {
                class: TenantClass::Premium,
                tokens: None,
            },
            ..AdmissionConfig::default()
        },
        ..FleetConfig::default()
    };

    // Cold pass: every artifact served over the wire must be byte-identical
    // to an in-process plan of the same request.
    let requests = requests();
    {
        let fleet = FleetService::start(config()).map_err(|e| format!("start fleet: {e}"))?;
        for request in &requests {
            let name = request.model.name().to_string();
            let local = plan_locally(request, None, &Telemetry::disabled())
                .map_err(|e| format!("local plan for `{name}`: {e}"))?;
            let ticket = fleet
                .submit("smoke", request.clone())
                .map_err(|e| format!("submit `{name}`: {e}"))?;
            let fp = ticket.fingerprint();
            let plan = ticket
                .wait()
                .map_err(|e| format!("remote plan for `{name}`: {e}"))?;
            if canonical_artifact(&plan, fp) != local {
                return Err(format!("remote/local artifact divergence for `{name}`"));
            }
            println!("fleet-smoke: `{name}` remote == local ({fp})");
        }
        let stats = fleet.stats();
        if stats.planner_runs != requests.len() as u64 {
            return Err(format!(
                "expected {} planner runs, saw {}",
                requests.len(),
                stats.planner_runs
            ));
        }
    }
    if server.served() != requests.len() as u64 {
        return Err(format!(
            "loopback worker served {} requests, expected {}",
            server.served(),
            requests.len()
        ));
    }

    // Warm restart: the reopened store must satisfy everything from disk.
    let fleet = FleetService::start(config()).map_err(|e| format!("reopen fleet: {e}"))?;
    for request in &requests {
        let name = request.model.name().to_string();
        let ticket = fleet
            .submit("smoke", request.clone())
            .map_err(|e| format!("warm submit `{name}`: {e}"))?;
        if ticket.served() != Served::Store {
            return Err(format!(
                "warm restart served `{name}` via {:?}, expected the store",
                ticket.served()
            ));
        }
        ticket
            .wait()
            .map_err(|e| format!("warm plan for `{name}`: {e}"))?;
    }
    let stats = fleet.stats();
    if stats.planner_runs != 0 {
        return Err(format!(
            "warm restart replanned {} times; the store must satisfy every request",
            stats.planner_runs
        ));
    }
    println!(
        "fleet-smoke: warm restart served {} requests from the store, zero planner runs",
        requests.len()
    );
    server.shutdown();
    Ok(())
}
