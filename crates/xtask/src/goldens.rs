//! The golden-artifact verifier: `cargo xtask verify-goldens [--bless]`.
//!
//! `tests/goldens/` holds committed plan artifacts for a fixed set of
//! (model, cluster, mini-batch) cells. For each cell this subcommand:
//!
//! 1. decodes the committed artifact against the regenerated model and
//!    cluster — which runs the codec's full `gp-verify` pass, so any
//!    corruption is reported by invariant name;
//! 2. runs the strategy-level `verify_strategy` pass (SP-tree checks the
//!    codec cannot do from the graph alone);
//! 3. re-plans the same problem fresh and requires the decoded plan to be
//!    identical (planner determinism, across builds);
//! 4. re-encodes the decoded plan and requires the bytes to equal the
//!    committed file (codec determinism).
//!
//! `--bless` regenerates the files instead. The search wall-clock stat is
//! zeroed before encoding — it is the one nondeterministic field in
//! `SearchStats` — so blessed bytes are reproducible on any machine.

use gp_cluster::Cluster;
use gp_ir::{zoo, SpModel};
use gp_partition::{GraphPipePlanner, Plan, PlanOptions, Planner};
use gp_serve::artifact::{decode_plan, encode_plan};
use gp_serve::fingerprint::request_fingerprint;
use std::process::ExitCode;

/// The golden cells: small enough to plan in debug mode in well under a
/// second each, diverse enough to cover branching, MoE routing, and plain
/// chains.
fn cells() -> Vec<(&'static str, SpModel, usize, u64)> {
    vec![
        ("mmt-tiny-4gpu", zoo::mmt(&zoo::MmtConfig::tiny()), 4, 32),
        (
            "candle-uno-tiny-4gpu",
            zoo::candle_uno(&zoo::CandleUnoConfig::tiny()),
            4,
            32,
        ),
        ("moe-tiny-4gpu", zoo::moe(&zoo::MoeConfig::tiny()), 4, 32),
        ("mlp-chain-4gpu", zoo::mlp_chain(4, 64), 4, 32),
        (
            "gnn-pipe-tiny-4gpu",
            zoo::gnn_pipe(&zoo::GnnPipeConfig::tiny()),
            4,
            32,
        ),
        ("gpt2-tiny-4gpu", zoo::gpt2(&zoo::Gpt2Config::tiny()), 4, 32),
    ]
}

fn plan_cell(model: &SpModel, cluster: &Cluster, mini_batch: u64) -> Result<Plan, String> {
    let mut plan = GraphPipePlanner::new()
        .plan(model, cluster, mini_batch)
        .map_err(|e| format!("planner failed: {e}"))?;
    // The only nondeterministic stats; zeroed so golden bytes reproduce.
    plan.stats.zero_walls();
    Ok(plan)
}

pub fn run(bless: bool) -> ExitCode {
    let dir = crate::repo_root().join("tests/goldens");
    let mut failures = 0usize;
    for (name, model, devices, mini_batch) in cells() {
        let cluster = Cluster::summit_like(devices);
        let path = dir.join(format!("{name}.json"));
        let outcome = (|| -> Result<&'static str, String> {
            let fresh = plan_cell(&model, &cluster, mini_batch)?;
            let fp = request_fingerprint(&model, &cluster, mini_batch, &PlanOptions::default(), 0);
            if bless {
                std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
                std::fs::write(&path, encode_plan(&fresh, Some(fp)))
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                return Ok("blessed");
            }
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {} (run --bless?): {e}", path.display()))?;
            let (decoded, recorded_fp) = decode_plan(&text, model.graph(), &cluster)
                .map_err(|e| format!("decode rejected the artifact: {e}"))?;
            let report = gp_verify::verify_strategy(&model, &cluster, &decoded);
            if !report.is_clean() {
                return Err(format!("verify_strategy rejected the artifact: {report}"));
            }
            if decoded != fresh {
                return Err(
                    "decoded plan differs from a fresh plan of the same problem \
                     (planner nondeterminism or an intended change — re-bless)"
                        .to_string(),
                );
            }
            if encode_plan(&decoded, recorded_fp) != text {
                return Err("re-encoding the decoded plan changed the bytes".to_string());
            }
            Ok("ok")
        })();
        match outcome {
            Ok(what) => println!("verify-goldens: {name}: {what}"),
            Err(e) => {
                eprintln!("verify-goldens: {name}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("verify-goldens: {failures} cell(s) failed");
        ExitCode::FAILURE
    }
}
