//! The determinism lint: `cargo xtask lint`.
//!
//! Plan fingerprints (`gp-serve`), artifact bytes, and golden tables are
//! all *byte*-deterministic promises. This lint statically scans the
//! modules behind those promises — every file whose module doc carries the
//! `gp-lint: deterministic` tag — for source patterns that historically
//! break such promises:
//!
//! * `HashMap` / `HashSet` — iteration order varies run to run;
//! * `.values()` / `.keys()` — map iteration even through an alias;
//! * `SystemTime` / `Instant::now` — wall-clock values leaking into data;
//! * `thread::current` / `ThreadId` — thread identity leaking into data.
//!
//! Legitimate uses (lookup-only maps, wall-clock search *statistics* that
//! are excluded from fingerprints) are declared in `lint-allowlist.txt`
//! with a justification; an allowlist entry that no longer matches
//! anything is itself an error, so the file cannot rot. The lint is
//! text-based on purpose: no parser dependency, and the hazard tokens are
//! distinctive enough that comments (skipped) and strings are not a
//! problem in practice.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The module-doc tag that opts a file into the lint.
pub const TAG: &str = "gp-lint: deterministic";

/// The allowlist file, relative to the repo root.
pub const ALLOWLIST: &str = "lint-allowlist.txt";

/// Files that MUST carry the tag: the fingerprint pipeline, the artifact
/// codec, and every producer of the data they hash. Dropping the tag from
/// one of these is a lint error, so the protection cannot silently erode.
const REQUIRED_TAGGED: &[&str] = &[
    "crates/serve/src/fingerprint.rs",
    "crates/serve/src/artifact.rs",
    "crates/serve/src/json.rs",
    "crates/fleet/src/protocol.rs",
    "crates/fleet/src/store.rs",
    "crates/sim/src/engine.rs",
    "crates/sim/src/report.rs",
    "crates/sched/src/stage.rs",
    "crates/sched/src/tasks.rs",
    "crates/sched/src/inflight.rs",
    "crates/partition/src/plan.rs",
    "crates/partition/src/dp.rs",
    "crates/partition/src/parallel.rs",
    "crates/baselines/src/pipedream.rs",
    "crates/baselines/src/piper.rs",
    "crates/ir/src/graph.rs",
    "crates/ir/src/sp.rs",
];

/// Hazard token and why it endangers determinism.
const HAZARDS: &[(&str, &str)] = &[
    ("HashMap", "iteration order varies run to run"),
    ("HashSet", "iteration order varies run to run"),
    (".values()", "map iteration, even through an alias"),
    (".keys()", "map iteration, even through an alias"),
    ("SystemTime", "wall-clock value can leak into hashed data"),
    ("Instant::now", "wall-clock value can leak into hashed data"),
    (
        "thread::current",
        "thread identity can leak into hashed data",
    ),
    ("ThreadId", "thread identity can leak into hashed data"),
];

struct Finding {
    file: String,
    line: usize,
    pattern: &'static str,
    why: &'static str,
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `{}` ({}): {}",
            self.file,
            self.line,
            self.pattern,
            self.why,
            self.text.trim()
        )
    }
}

struct AllowEntry {
    file: String,
    pattern: String,
    line_no: usize,
    used: bool,
}

fn parse_allowlist(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join(ALLOWLIST);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
        if parts.len() != 3 || parts[2].is_empty() {
            return Err(format!(
                "{ALLOWLIST}:{}: expected `path | pattern | justification`",
                i + 1
            ));
        }
        entries.push(AllowEntry {
            file: parts[0].to_string(),
            pattern: parts[1].to_string(),
            line_no: i + 1,
            used: false,
        });
    }
    Ok(entries)
}

/// All `.rs` files under the workspace's first-party source trees
/// (`crates/*/src` and the root `src/`), sorted for stable output.
fn source_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("src")];
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        for c in crates.flatten() {
            // The lint's own source spells the tag and every hazard token;
            // the tooling crate is not a determinism-sensitive module.
            if c.file_name() == "xtask" {
                continue;
            }
            stack.push(c.path().join("src"));
        }
    }
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Scans one tagged file, appending hazards that no allowlist entry covers.
fn scan(rel: &str, text: &str, allow: &mut [AllowEntry], findings: &mut Vec<Finding>) {
    for (i, line) in text.lines().enumerate() {
        // Test modules sit at the end of each file by repository
        // convention; their scaffolding may use whatever it likes.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        for &(pattern, why) in HAZARDS {
            if !line.contains(pattern) {
                continue;
            }
            let mut allowed = false;
            for entry in allow.iter_mut() {
                if entry.file == rel && entry.pattern == pattern {
                    entry.used = true;
                    allowed = true;
                }
            }
            if !allowed {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    pattern,
                    why,
                    text: line.to_string(),
                });
            }
        }
    }
}

pub fn run() -> ExitCode {
    let root = crate::repo_root();
    let mut allow = match parse_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut findings = Vec::new();
    let mut errors = Vec::new();
    let mut tagged = 0usize;
    let mut tagged_files = Vec::new();
    for path in source_files(&root) {
        let rel = path
            .strip_prefix(&root)
            .expect("source files live under the root")
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(&path) else {
            errors.push(format!("cannot read {rel}"));
            continue;
        };
        if !text.contains(TAG) {
            continue;
        }
        tagged += 1;
        tagged_files.push(rel.clone());
        scan(&rel, &text, &mut allow, &mut findings);
    }
    for required in REQUIRED_TAGGED {
        if !tagged_files.iter().any(|f| f == required) {
            errors.push(format!(
                "{required} must carry the `{TAG}` tag (it feeds fingerprints or the codec)"
            ));
        }
    }
    for entry in &allow {
        if !entry.used {
            errors.push(format!(
                "{ALLOWLIST}:{}: unused entry `{} | {}` — the hazard it excused is gone; delete it",
                entry.line_no, entry.file, entry.pattern
            ));
        }
    }
    for f in &findings {
        eprintln!("lint: {f}");
    }
    for e in &errors {
        eprintln!("lint: {e}");
    }
    if findings.is_empty() && errors.is_empty() {
        println!(
            "lint: clean — {tagged} tagged modules, {} allowlisted exceptions",
            allow.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint: {} hazard(s), {} error(s); justify real exceptions in {ALLOWLIST}",
            findings.len(),
            errors.len()
        );
        ExitCode::FAILURE
    }
}
