//! Repository automation, invoked as `cargo xtask <subcommand>` (the alias
//! lives in `.cargo/config.toml`).
//!
//! * `lint` — the source-level determinism lint: scans every module tagged
//!   `gp-lint: deterministic` for nondeterminism hazards (`HashMap`/
//!   `HashSet` iteration, wall-clock reads, thread-identity leaks) that
//!   could corrupt plan fingerprints or artifact bytes, honoring the
//!   justified exceptions in `lint-allowlist.txt`. CI runs this as the
//!   `verify-lint` gate. See DESIGN.md §"Determinism lint".
//! * `verify-goldens [--bless]` — decodes every committed golden plan
//!   artifact under `tests/goldens/`, runs the full `gp-verify` static
//!   analysis on it, re-plans the same problem fresh, and checks the bytes
//!   and the plan agree; `--bless` regenerates the files (with the
//!   wall-clock stat zeroed so the bytes are reproducible).
//! * `bench-check [--fresh <file>]` — compares a fresh `planner_profile`
//!   sweep against the committed BENCH_planner.json: plan fingerprints
//!   must match exactly, and wall-clock regressions beyond 1.5x fail.
//!   CI runs this so the bench trajectory stops being write-only.
//! * `fleet-smoke` — boots a loopback TCP planner worker and a two-shard
//!   store-backed `gp-fleet` service in a temp directory, round-trips
//!   three zoo models, and asserts the served artifacts are byte-identical
//!   to in-process plans and that a warm restart replays the store with
//!   zero planner runs. CI runs this next to the serve smoke.
//! * `trace-check <file.json>...` — validates Chrome/Perfetto
//!   `trace_event` JSON (as exported by `gp-obs` and the `--trace` flags):
//!   well-formed, non-negative durations, properly paired `B`/`E` events
//!   per lane. CI runs it against a freshly exported session trace.

mod bench_check;
mod fleet_smoke;
mod goldens;
mod lint;
mod trace;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(),
        Some("verify-goldens") => goldens::run(args.iter().any(|a| a == "--bless")),
        Some("trace-check") => trace::run(&args[1..]),
        Some("bench-check") => bench_check::run(&args[1..]),
        Some("fleet-smoke") => fleet_smoke::run(),
        other => {
            eprintln!(
                "usage: cargo xtask <lint | verify-goldens [--bless] | trace-check <file>... | bench-check [--fresh <sweep.json>] | fleet-smoke>{}",
                other.map_or(String::new(), |o| format!(" (got `{o}`)"))
            );
            ExitCode::FAILURE
        }
    }
}

/// The repository root (the workspace the xtask binary was built from).
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/xtask sits two levels under the repo root")
        .to_path_buf()
}
