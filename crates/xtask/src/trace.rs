//! `cargo xtask trace-check <file.json>...` — structural validator for
//! Chrome/Perfetto `trace_event` JSON produced by `gp-obs`
//! ([`PerfettoSink`](../../obs/src/export.rs)) and the repository's
//! `--trace` flags.
//!
//! Checks, per file:
//!
//! * the file parses as JSON and has a `traceEvents` array;
//! * every event is an object with a string `ph` phase;
//! * `X` (complete) slices carry non-negative `ts` and `dur`;
//! * `B`/`E` (duration) events are properly paired per `(pid, tid)` lane:
//!   every `E` closes the most recent open `B` with the same name at a
//!   timestamp no earlier than the `B`'s (strictly non-negative
//!   durations), and no lane is left with an open `B` at end of file;
//! * `M` (metadata) events need no timestamp and are otherwise ignored.
//!
//! This is the shape `ui.perfetto.dev` renders without warnings; CI runs
//! it (in the `verify-lint` job) against a trace exported from a full
//! `Session` plan→simulate run.

use gp_serve::json::Json;
use std::collections::HashMap;
use std::process::ExitCode;

/// Entry point for `cargo xtask trace-check`.
pub fn run(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: cargo xtask trace-check <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                failed = true;
                continue;
            }
        };
        match check_trace(&text) {
            Ok(summary) => println!("trace-check: {path}: ok ({summary})"),
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One `(pid, tid)` lane's stack of open `B` events: `(name, ts)`.
type Lane = Vec<(String, f64)>;

/// Validates a `trace_event` JSON document; returns a one-line summary.
fn check_trace(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("no `traceEvents` member")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut lanes: HashMap<(u64, u64), Lane> = HashMap::new();
    let mut slices = 0u64;
    let mut durations = 0u64;
    let mut metadata = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: String| format!("event {i}: {msg}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("no string `ph`".into()))?;
        let lane_key = || -> Result<(u64, u64), String> {
            let pid = ev.get("pid").and_then(Json::as_u64).unwrap_or(0);
            let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
            Ok((pid, tid))
        };
        let ts = || -> Result<f64, String> {
            let ts = ev
                .get("ts")
                .and_then(Json::as_f64)
                .ok_or_else(|| at(format!("`{ph}` event has no numeric `ts`")))?;
            if ts < 0.0 {
                return Err(at(format!("negative `ts` {ts}")));
            }
            Ok(ts)
        };
        match ph {
            "X" => {
                let _ = ts()?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| at("`X` event has no numeric `dur`".into()))?;
                if dur < 0.0 {
                    return Err(at(format!("negative `dur` {dur}")));
                }
                slices += 1;
            }
            "B" => {
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("`B` event has no string `name`".into()))?;
                lanes
                    .entry(lane_key()?)
                    .or_default()
                    .push((name.to_string(), ts()?));
                durations += 1;
            }
            "E" => {
                let (pid, tid) = lane_key()?;
                let end = ts()?;
                let Some((name, begin)) = lanes.entry((pid, tid)).or_default().pop() else {
                    return Err(at(format!("`E` with no open `B` on lane {pid}/{tid}")));
                };
                // trace_event E events may omit `name`; when present it
                // must close the matching B.
                if let Some(e_name) = ev.get("name").and_then(Json::as_str) {
                    if e_name != name {
                        return Err(at(format!(
                            "`E` named `{e_name}` closes `B` named `{name}` on lane {pid}/{tid}"
                        )));
                    }
                }
                if end < begin {
                    return Err(at(format!(
                        "`{name}` on lane {pid}/{tid} ends at {end} before it begins at {begin}"
                    )));
                }
            }
            "M" => metadata += 1,
            other => {
                return Err(at(format!("unsupported phase `{other}`")));
            }
        }
    }
    for ((pid, tid), lane) in &lanes {
        if let Some((name, _)) = lane.last() {
            return Err(format!(
                "lane {pid}/{tid} ends with `{name}` (and {} total) still open",
                lane.len()
            ));
        }
    }
    Ok(format!(
        "{} events: {slices} slices, {} B/E pairs, {metadata} metadata",
        events.len(),
        durations
    ))
}

#[cfg(test)]
mod tests {
    use super::check_trace;

    #[test]
    fn valid_traces_pass() {
        let text = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"ph":"M","pid":1,"name":"process_name","args":{"name":"live"}},
            {"ph":"B","pid":1,"tid":0,"ts":0,"name":"outer"},
            {"ph":"B","pid":1,"tid":0,"ts":1.5,"name":"inner"},
            {"ph":"E","pid":1,"tid":0,"ts":2},
            {"ph":"E","pid":1,"tid":0,"ts":3,"name":"outer"},
            {"ph":"X","pid":2,"tid":4,"ts":0,"dur":12,"name":"F s0 mb0"}
        ]}"#;
        assert!(check_trace(text).is_ok(), "{:?}", check_trace(text));
    }

    #[test]
    fn unbalanced_and_negative_traces_fail() {
        let open = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":0,"name":"x"}]}"#;
        assert!(check_trace(open).unwrap_err().contains("still open"));
        let stray = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":0}]}"#;
        assert!(check_trace(stray).unwrap_err().contains("no open `B`"));
        let backwards = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":5,"name":"x"},
            {"ph":"E","pid":1,"tid":0,"ts":4}
        ]}"#;
        assert!(check_trace(backwards)
            .unwrap_err()
            .contains("before it begins"));
        let negative = r#"{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":0,"dur":-1,"name":"x"}]}"#;
        assert!(check_trace(negative)
            .unwrap_err()
            .contains("negative `dur`"));
        let mismatched = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":0,"name":"x"},
            {"ph":"E","pid":1,"tid":0,"ts":1,"name":"y"}
        ]}"#;
        assert!(check_trace(mismatched).unwrap_err().contains("closes"));
        assert!(check_trace("not json").is_err());
        assert!(check_trace("{}").unwrap_err().contains("traceEvents"));
    }
}
