//! The branch-count sweep behind Figure 7 (left): GraphPipe's advantage
//! over sequential pipelining grows with the number of parallel branches in
//! CANDLE-Uno, because pipeline depth (and with it warm-up and activation
//! memory) stays flat while SPP's depth grows linearly.
//!
//! Run with: `cargo run --release --example candle_uno_branches`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    let mini_batch = 8192;
    println!("CANDLE-Uno on 8 GPUs, mini-batch {mini_batch}:\n");
    println!("branches | GraphPipe (depth) | PipeDream (depth) | speedup");
    for branches in [2usize, 4, 8] {
        let session = Session::builder()
            .model(zoo::candle_uno(&zoo::CandleUnoConfig::with_branches(
                branches,
            )))
            .cluster(Cluster::summit_like(8))
            .mini_batch(mini_batch)
            .options(PlanOptions::default().with_max_micro_batches(128))
            .build()?;
        let table = session.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
        // Both planners must handle every branch count; a ✗ here is a bug.
        if let Some(e) = table.first_error() {
            return Err(e.clone());
        }
        let (gp, pd) = (
            table.row(PlannerKind::GraphPipe).expect("requested"),
            table.row(PlannerKind::PipeDream).expect("requested"),
        );
        println!(
            "{branches:>8} | {:>11.0} ({:>2}) | {:>11.0} ({:>2}) | {:.2}x",
            gp.throughput.expect("no error, so populated"),
            gp.depth.expect("no error, so populated"),
            pd.throughput.expect("no error, so populated"),
            pd.depth.expect("no error, so populated"),
            table
                .speedup(PlannerKind::GraphPipe, PlannerKind::PipeDream)
                .expect("both planners succeeded")
        );
    }
    Ok(())
}
