//! The branch-count sweep behind Figure 7 (left): GraphPipe's advantage
//! over sequential pipelining grows with the number of parallel branches in
//! CANDLE-Uno, because pipeline depth (and with it warm-up and activation
//! memory) stays flat while SPP's depth grows linearly.
//!
//! Run with: `cargo run --release --example candle_uno_branches`

use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::summit_like(8);
    let mini_batch = 8192;
    println!("CANDLE-Uno on 8 GPUs, mini-batch {mini_batch}:\n");
    println!("branches | GraphPipe (depth) | PipeDream (depth) | speedup");
    for branches in [2usize, 4, 8] {
        let model = zoo::candle_uno(&zoo::CandleUnoConfig::with_branches(branches));
        let opts = PlanOptions {
            max_micro_batches: 128,
            ..PlanOptions::default()
        };
        let gp = graphpipe::evaluate(&model, &cluster, mini_batch, PlannerKind::GraphPipe, &opts)?;
        let pd = graphpipe::evaluate(&model, &cluster, mini_batch, PlannerKind::PipeDream, &opts)?;
        println!(
            "{branches:>8} | {:>11.0} ({:>2}) | {:>11.0} ({:>2}) | {:.2}x",
            gp.report.throughput,
            gp.plan.pipeline_depth(),
            pd.report.throughput,
            pd.plan.pipeline_depth(),
            gp.report.throughput / pd.report.throughput
        );
    }
    Ok(())
}
