//! Planning a genuinely non-series-parallel DAG: a deep GNN layer
//! pipeline whose heads mix neighbor state every layer (plus
//! jumping-knowledge skips), so no SP tree represents the graph exactly.
//! `Session::builder().model_dag(..)` walks the fallback ladder —
//! recognition, then SP-ization with quantified distortion, then
//! clustering — and records the rung taken in the plan.
//!
//! Run with: `cargo run --release --example gnn_pipe`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    let cfg = zoo::GnnPipeConfig::default();
    let graph = zoo::gnn_pipe_graph(&cfg);
    println!(
        "GNN pipe: {} layers x {} heads, dim {} -> {} operators\n",
        cfg.layers,
        cfg.heads,
        cfg.dim,
        graph.len()
    );

    // The raw DAG goes in; the ladder decides how to make it plannable.
    let session = Session::builder()
        .model_dag(graph)
        .cluster(Cluster::summit_like(8))
        .mini_batch(128)
        .options(PlanOptions::default().with_max_micro_batches(128))
        .build()?;
    let strategy = session.plan(PlannerKind::GraphPipe)?;
    match strategy.plan_path() {
        PlanPath::ExactSp => println!("path: exact SP recognition"),
        PlanPath::SpIzed { distortion } => {
            println!("path: SP-ized level chain, {distortion} bytes of extra activation transit")
        }
        PlanPath::Clustered { units } => println!("path: clustered fallback, {units} units"),
    }

    let report = strategy.simulate()?;
    println!(
        "planned {} stages (depth {}), simulated {:.0} samples/s",
        strategy.plan().stage_graph.len(),
        strategy.plan().pipeline_depth(),
        report.throughput
    );

    // The plan path survives the artifact codec: ship the plan anywhere
    // and the consumer still knows which rung produced it.
    let restored = session.load_artifact(&strategy.artifact(), PlannerKind::GraphPipe)?;
    assert_eq!(restored.plan_path(), strategy.plan_path());
    println!("artifact round-trip preserved the plan path");
    Ok(())
}
