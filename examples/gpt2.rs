//! A residual transformer (GPT-2 shape) planned straight from its raw
//! graph. Residual skip connections make the graph look non-trivial, but
//! every operator is totally ordered by reachability, so SP recognition
//! recovers an exact chain — no hand-authored tree, no distortion — and
//! graph pipeline parallelism never loses to the sequential baseline.
//!
//! Run with: `cargo run --release --example gpt2`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    let cfg = zoo::Gpt2Config::default();
    let graph = zoo::gpt2_graph(&cfg);
    println!(
        "GPT-2: {} blocks, hidden {}, seq {} -> {} operators ({} edges)\n",
        cfg.layers,
        cfg.hidden,
        cfg.seq,
        graph.len(),
        graph.edges().count()
    );

    let session = Session::builder()
        .model_dag(graph)
        .cluster(Cluster::summit_like(8))
        .mini_batch(64)
        .options(PlanOptions::default().with_max_micro_batches(64))
        .build()?;
    let strategy = session.plan(PlannerKind::GraphPipe)?;
    assert_eq!(strategy.plan_path(), PlanPath::ExactSp);
    println!("recognition recovered an exact SP tree (residual skips and all)");

    let table = session.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
    if let Some(e) = table.first_error() {
        return Err(e.clone());
    }
    println!("{table}");
    let speedup = table
        .speedup(PlannerKind::GraphPipe, PlannerKind::PipeDream)
        .expect("both planners succeeded");
    assert!(speedup >= 1.0, "GPP must not lose to SPP");
    Ok(())
}
