//! End-to-end *real* training: plan a GPP strategy for a small multi-modal
//! Transformer, then train it with actual tensor math on the threaded
//! runtime (one worker thread per simulated GPU). The run's first-step loss
//! is checked against single-device full-batch training — the paper's
//! "training semantics preserved" guarantee (§8).
//!
//! Run with: `cargo run --release --example multimodal_training`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    // A CPU-sized multi-modal Transformer: 2 branches x 2 layers.
    let session = Session::builder()
        .model(zoo::mmt(&zoo::MmtConfig::tiny()))
        .cluster(Cluster::summit_like(3).with_memory_capacity(1 << 30))
        .mini_batch(8)
        .build()?;
    let strategy = session.plan(PlannerKind::GraphPipe)?;
    println!("{}", strategy.describe());

    // Train for a few iterations with SGD on the pipelined runtime.
    println!("training with the pipelined runtime (SGD, lr = 0.05):");
    let run = strategy.execute(&TrainingConfig {
        steps: 8,
        lr: 0.05,
        ..TrainingConfig::default()
    })?;
    for (step, loss) in run.losses.iter().enumerate() {
        println!("  step {step}: loss {loss:.6}");
    }

    // Gradient equivalence: distributed == single-device, same data.
    println!(
        "\nloss: distributed {:.6} vs single-device {:.6} (diff {:.2e})",
        run.first_loss(),
        run.reference_loss,
        run.reference_gap()
    );
    assert!(run.reference_gap() / run.reference_loss < 1e-3);
    assert!(run.improved(), "training loss must decrease");
    Ok(())
}
