//! End-to-end *real* training: plan a GPP strategy for a small multi-modal
//! Transformer, then train it with actual tensor math on the threaded
//! runtime (one worker thread per simulated GPU), verifying that the
//! pipelined execution matches single-device training.
//!
//! Run with: `cargo run --release --example multimodal_training`

use graphpipe::exec::{reference_step, synth_batch, train_iteration, ModelParams};
use graphpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CPU-sized multi-modal Transformer: 2 branches x 2 layers.
    let model = zoo::mmt(&zoo::MmtConfig::tiny());
    let cluster = Cluster::summit_like(3).with_memory_capacity(1 << 30);
    let mini_batch = 8;

    let plan = GraphPipePlanner::new().plan(&model, &cluster, mini_batch)?;
    println!("{}", plan.describe(model.graph()));

    let graph = model.graph();
    let batch = synth_batch(graph, mini_batch, 7);
    let mut params = ModelParams::init(graph, 42);

    // Gradient equivalence: distributed == single-device, same data.
    let (ref_loss, _) = reference_step(graph, &params, &batch, mini_batch);
    let mut probe = params.clone();
    let result = train_iteration(
        graph,
        &plan.stage_graph,
        &plan.schedule,
        &mut probe,
        &batch,
        0.0,
    )?;
    println!(
        "loss: distributed {:.6} vs single-device {ref_loss:.6} (diff {:.2e})",
        result.loss,
        (result.loss - ref_loss).abs()
    );

    // Train for a few iterations; the loss must go down.
    println!("\ntraining with the pipelined runtime (SGD, lr = 0.05):");
    for step in 0..8 {
        let r = train_iteration(
            graph,
            &plan.stage_graph,
            &plan.schedule,
            &mut params,
            &batch,
            0.05,
        )?;
        println!("  step {step}: loss {:.6}", r.loss);
    }
    Ok(())
}
