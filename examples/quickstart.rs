//! Quickstart: plan a GraphPipe strategy for a multi-branch model, inspect
//! it, and measure a simulated training iteration.
//!
//! Run with: `cargo run --release --example quickstart`

use graphpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model with parallel branches: the paper's Multi-Modal
    //    Transformer (4 modality branches x 8 Transformer layers).
    let model = zoo::mmt(&zoo::MmtConfig::default());
    println!(
        "model: {} ops, {:.1}M parameters, {} parallel branch groups",
        model.graph().len(),
        model.graph().total_params() as f64 / 1e6,
        model.root().branch_points(),
    );

    // 2. A Summit-like cluster: 8 V100-class GPUs, NVLink within nodes.
    let cluster = Cluster::summit_like(8);

    // 3. Search for a graph-pipeline-parallel training strategy.
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 128)?;
    println!("\n{}", plan.describe(model.graph()));
    println!(
        "search took {:.3}s over {} DP evaluations",
        plan.stats.wall.as_secs_f64(),
        plan.stats.dp_evals
    );

    // 4. Execute one training iteration on the simulated runtime.
    let report = graphpipe::simulate_plan(&model, &cluster, &plan)?;
    println!(
        "simulated iteration: {:.1} ms -> {:.0} samples/s, utilization {:.0}%, peak mem {} MiB",
        report.iteration_time * 1e3,
        report.throughput,
        report.utilization * 100.0,
        report.max_peak_memory() >> 20
    );

    // 5. Compare against the sequential-pipeline baseline.
    let spp = PipeDreamPlanner::new().plan(&model, &cluster, 128)?;
    let spp_report = graphpipe::simulate_plan(&model, &cluster, &spp)?;
    println!(
        "\nGraphPipe {:.0} samples/s (depth {}) vs PipeDream {:.0} samples/s (depth {}) -> {:.2}x",
        report.throughput,
        plan.pipeline_depth(),
        spp_report.throughput,
        spp.pipeline_depth(),
        report.throughput / spp_report.throughput
    );
    Ok(())
}
