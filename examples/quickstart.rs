//! Quickstart: open a [`Session`], plan a GraphPipe strategy for a
//! multi-branch model, inspect it, measure a simulated training iteration,
//! and render the Figure-6-style comparison against the SPP baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    // 1. A model with parallel branches — the paper's Multi-Modal
    //    Transformer — on a Summit-like 8-GPU cluster.
    let model = zoo::mmt(&zoo::MmtConfig::default());
    println!(
        "model: {} ops, {:.1}M parameters, {} parallel branch groups",
        model.graph().len(),
        model.graph().total_params() as f64 / 1e6,
        model.root().branch_points(),
    );
    let session = Session::builder()
        .model(model)
        .cluster(Cluster::summit_like(8))
        .mini_batch(128)
        .build()?;

    // 2. Search for a graph-pipeline-parallel training strategy.
    let strategy = session.plan(PlannerKind::GraphPipe)?;
    println!("\n{}", strategy.describe());
    println!(
        "search took {:.3}s over {} DP evaluations (request fingerprint {})",
        strategy.stats.wall.as_secs_f64(),
        strategy.stats.dp_evals,
        strategy.fingerprint(),
    );

    // 3. Execute one training iteration on the simulated runtime.
    let report = strategy.simulate()?;
    println!(
        "simulated iteration: {:.1} ms -> {:.0} samples/s, utilization {:.0}%, peak mem {} MiB",
        report.iteration_time * 1e3,
        report.throughput,
        report.utilization * 100.0,
        report.max_peak_memory() >> 20
    );

    // 4. Compare against the sequential-pipeline baseline (Figure 6c).
    let table = session.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
    println!(
        "\nmicro-batch sweep on {} GPUs, mini-batch {}:\n{table}",
        table.devices(),
        table.mini_batch()
    );
    Ok(())
}
