//! The recommendation workload (Figure 6b): DLRM's 7 dense + 7 sparse
//! feature branches give GPP fourteen-way concurrent structure that a
//! sequential pipeline serializes. Piper's downset planner blows up on it —
//! the paper's "✗".
//!
//! Run with: `cargo run --release --example recommender_dlrm`

use graphpipe::prelude::*;
use graphpipe::PlannerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::dlrm(&zoo::DlrmConfig::default());
    let cluster = Cluster::summit_like(8);
    let mini_batch = 512;
    println!(
        "DLRM: {} ops, {:.0}M parameters ({}M of them embeddings)",
        model.graph().len(),
        model.graph().total_params() as f64 / 1e6,
        7 * 64, // 7 tables x 1M x 64
    );

    for kind in [PlannerKind::GraphPipe, PlannerKind::PipeDream] {
        let res = graphpipe::evaluate(&model, &cluster, mini_batch, kind, &PlanOptions::default())?;
        println!(
            "\n{:<10} depth {} micro-batch {} -> {:.0} samples/s (bubble {:.0}%)",
            kind.label(),
            res.plan.pipeline_depth(),
            res.plan.max_micro_batch(),
            res.report.throughput,
            res.report.bubble_fraction * 100.0
        );
    }

    // Piper cannot handle the 14-branch lattice.
    match PiperPlanner::new().plan(&model, &cluster, mini_batch) {
        Err(PlanError::SearchExplosion { evals }) => {
            println!("\nPiper      ✗ search exploded after {evals} downsets/evals (Table 1)")
        }
        other => println!("\nPiper      unexpected outcome: {other:?}"),
    }
    Ok(())
}
