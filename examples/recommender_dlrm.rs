//! The recommendation workload (Figure 6b): DLRM's 7 dense + 7 sparse
//! feature branches give GPP fourteen-way concurrent structure that a
//! sequential pipeline serializes. Piper's downset planner blows up on it —
//! the comparison table renders the paper's "✗" with the search-explosion
//! diagnostics as a footnote.
//!
//! Run with: `cargo run --release --example recommender_dlrm`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    let model = zoo::dlrm(&zoo::DlrmConfig::default());
    println!(
        "DLRM: {} ops, {:.0}M parameters ({}M of them embeddings)",
        model.graph().len(),
        model.graph().total_params() as f64 / 1e6,
        7 * 64, // 7 tables x 1M x 64
    );
    let session = Session::builder()
        .model(model)
        .cluster(Cluster::summit_like(8))
        .mini_batch(512)
        .build()?;

    let table = session.compare(&[
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ]);
    println!("\n{table}");

    // Piper's ✗ is the expected outcome; anything else failing is a bug.
    for kind in [PlannerKind::GraphPipe, PlannerKind::PipeDream] {
        if let Some(e) = table.row(kind).and_then(|r| r.error.clone()) {
            return Err(e);
        }
    }

    // A closer look at one strategy: a single-shot GraphPipe plan at the
    // session's default options (no micro-batch sweep, so its micro-batch
    // may differ from the sweep-best row in the table above).
    let strategy = session.plan(PlannerKind::GraphPipe)?;
    let report = strategy.simulate()?;
    println!(
        "single-shot GraphPipe plan: depth {}, micro-batch {}, bubble {:.0}%, fingerprint {}",
        strategy.pipeline_depth(),
        strategy.max_micro_batch(),
        report.bubble_fraction * 100.0,
        strategy.fingerprint()
    );
    Ok(())
}
