//! Visualize pipeline schedules: plans the Figure 10 case-study model with
//! both GraphPipe and the SPP baseline and renders their execution
//! timelines as ASCII Gantt charts (Figure 8 style).
//!
//! Run with: `cargo run --release --example schedule_gantt`
//!
//! Pass `--trace out.json` to also write a Chrome/Perfetto trace of the
//! run: the live telemetry spans (planning, simulation) appear as one
//! process, and the GraphPipe plan's simulated timeline as another (the
//! two schedules would overlay on the same device lanes, so only the GPP
//! one is exported) — open the file at <https://ui.perfetto.dev> or
//! `chrome://tracing`.

use graphpipe::obs::{PerfettoSink, Telemetry};
use graphpipe::prelude::*;
use graphpipe::sim::report_into_perfetto;

fn main() -> Result<(), graphpipe::Error> {
    let mut args = std::env::args().skip(1);
    let trace_path = match args.next().as_deref() {
        Some("--trace") => Some(args.next().expect("--trace expects a path")),
        Some(other) => panic!("unknown flag {other}; see the module docs"),
        None => None,
    };
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    let session = Session::builder()
        .model(zoo::case_study(&zoo::MmtConfig::default()))
        .cluster(Cluster::summit_like(8).with_memory_capacity(384 << 20))
        .mini_batch(32)
        .telemetry(telemetry.clone())
        .build()?;

    let mut sink = PerfettoSink::new();
    for (label, kind) in [
        ("SPP (sequential stages)", PlannerKind::PipeDream),
        ("GPP (concurrent branches)", PlannerKind::GraphPipe),
    ] {
        let strategy = session.plan(kind)?;
        let report = strategy.simulate()?;
        println!(
            "== {label}: depth {}, {:.0} samples/s",
            strategy.pipeline_depth(),
            report.throughput
        );
        println!("{}", render_gantt(&report, &strategy.stage_graph, 96));
        if trace_path.is_some() && matches!(kind, PlannerKind::GraphPipe) {
            report_into_perfetto(&mut sink, &report);
        }
    }

    if let Some(path) = trace_path {
        let trace = telemetry.export(&mut sink);
        std::fs::write(&path, trace).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote Perfetto trace to {path} (open at https://ui.perfetto.dev)");
    }
    Ok(())
}
