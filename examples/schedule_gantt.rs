//! Visualize pipeline schedules: plans the Figure 10 case-study model with
//! both GraphPipe and the SPP baseline and renders their execution
//! timelines as ASCII Gantt charts (Figure 8 style).
//!
//! Run with: `cargo run --release --example schedule_gantt`

use graphpipe::prelude::*;

fn main() -> Result<(), graphpipe::Error> {
    let session = Session::builder()
        .model(zoo::case_study(&zoo::MmtConfig::default()))
        .cluster(Cluster::summit_like(8).with_memory_capacity(384 << 20))
        .mini_batch(32)
        .build()?;

    for (label, kind) in [
        ("SPP (sequential stages)", PlannerKind::PipeDream),
        ("GPP (concurrent branches)", PlannerKind::GraphPipe),
    ] {
        let strategy = session.plan(kind)?;
        let report = strategy.simulate()?;
        println!(
            "== {label}: depth {}, {:.0} samples/s",
            strategy.pipeline_depth(),
            report.throughput
        );
        println!("{}", render_gantt(&report, &strategy.stage_graph, 96));
    }
    Ok(())
}
