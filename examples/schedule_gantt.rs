//! Visualize pipeline schedules: plans the Figure 10 case-study model with
//! both GraphPipe and the SPP baseline and renders their execution
//! timelines as ASCII Gantt charts (Figure 8 style).
//!
//! Run with: `cargo run --release --example schedule_gantt`

use graphpipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::case_study(&zoo::MmtConfig::default());
    let cluster = Cluster::summit_like(8).with_memory_capacity(384 << 20);
    let mini_batch = 32;

    for (label, plan) in [
        (
            "SPP (sequential stages)",
            PipeDreamPlanner::new().plan(&model, &cluster, mini_batch)?,
        ),
        (
            "GPP (concurrent branches)",
            GraphPipePlanner::new().plan(&model, &cluster, mini_batch)?,
        ),
    ] {
        let report = graphpipe::simulate_plan(&model, &cluster, &plan)?;
        println!(
            "== {label}: depth {}, {:.0} samples/s",
            plan.pipeline_depth(),
            report.throughput
        );
        println!("{}", render_gantt(&report, &plan.stage_graph, 96));
    }
    Ok(())
}
