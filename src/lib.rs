//! Workspace facade for the GraphPipe reproduction.
//!
//! Everything lives in the [`graphpipe`] crate; this root package exists to
//! host the repository-level `examples/` and `tests/` directories.

#![forbid(unsafe_code)]

pub use graphpipe::*;
