//! Beam-pruning and warm-start coverage for the GraphPipe planner (the
//! "planner at 128+ GPUs" perf work; DESIGN.md §"Planner search: pruning,
//! vectorization, warm-start").
//!
//! Three contracts are pinned here:
//!
//! * **a saturating beam is a no-op** — `beam_width` wide enough to admit
//!   every device window must replay the exhaustive search byte-for-byte,
//!   search counters included (the truncation keeps survivors in
//!   enumeration order, so a window that fits inside the beam is
//!   untouched);
//! * **bounded beams degrade gracefully and deterministically** — the
//!   makespan delta vs. exhaustive at widths {4, 8, 16} is pinned per zoo
//!   model, so a change to the pruning order shows up as a table diff
//!   rather than a silent quality regression;
//! * **warm-start changes search effort, never the answer** — a plan
//!   seeded from another configuration's strategy is identical to the
//!   cold plan (same stage graph, schedule, and plan fingerprint), for
//!   both the sequential and the speculative parallel planner, with and
//!   without a beam.

use graphpipe::prelude::*;
use graphpipe::serve::artifact::encode_plan;
use graphpipe::serve::fingerprint::plan_fingerprint;
use std::fmt::Write as _;

/// A zoo model with its per-device-count mini-batches (the golden-table
/// operating points, restricted to the scales this file exercises).
type Cell = (&'static str, SpModel, Vec<(usize, u64)>);

fn zoo_cells() -> Vec<Cell> {
    vec![
        (
            "mmt",
            zoo::mmt(&zoo::MmtConfig::default()),
            vec![(8, 128), (16, 256), (32, 512)],
        ),
        (
            "dlrm",
            zoo::dlrm(&zoo::DlrmConfig::default()),
            vec![(8, 512), (16, 1024), (32, 2048)],
        ),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
            vec![(8, 8192), (16, 16384), (32, 32768)],
        ),
        (
            "candle-uno-full",
            zoo::candle_uno(&zoo::CandleUnoConfig::full()),
            vec![(8, 8192), (16, 16384), (32, 32768), (64, 65536)],
        ),
        (
            "moe",
            zoo::moe(&zoo::MoeConfig::default()),
            vec![(8, 256), (16, 512), (32, 1024), (64, 2048)],
        ),
    ]
}

fn base_options() -> PlanOptions {
    PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    }
}

fn mini_batch_at(points: &[(usize, u64)], devices: usize) -> u64 {
    points
        .iter()
        .find(|&&(d, _)| d == devices)
        .map(|&(_, b)| b)
        .unwrap_or_else(|| panic!("no operating point at {devices} devices"))
}

fn strip(mut p: Plan) -> Plan {
    p.stats.zero_walls();
    p
}

/// A beam wide enough to admit every candidate window must be
/// byte-identical to the unbounded default — same plan, same artifact
/// bytes, same search counters, zero beam prunes. This is the golden
/// replay that makes `beam_width: None` and `beam_width: Some(huge)`
/// interchangeable, so enabling the beam plumbing can never perturb a
/// fingerprint on its own.
#[test]
fn saturating_beam_replays_the_exhaustive_plans() {
    for (name, model, points) in zoo_cells() {
        let devices = 8;
        let mini_batch = mini_batch_at(&points, devices);
        let cluster = Cluster::summit_like(devices);
        let exhaustive = GraphPipePlanner::with_options(base_options())
            .plan(&model, &cluster, mini_batch)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let saturated = GraphPipePlanner::with_options(base_options().with_beam_width(u32::MAX))
            .plan(&model, &cluster, mini_batch)
            .unwrap_or_else(|e| panic!("{name} (saturating beam): {e}"));
        assert_eq!(saturated.stats.beam_prunes, 0, "{name}: beam truncated");
        let (exhaustive, saturated) = (strip(exhaustive), strip(saturated));
        assert_eq!(exhaustive, saturated, "{name}: plans diverged");
        assert_eq!(
            encode_plan(&exhaustive, None),
            encode_plan(&saturated, None),
            "{name}: artifact bytes diverged"
        );
    }
}

/// Bounded beams trade plan quality for search effort; this table pins
/// the trade at 16 GPUs so it only moves when someone means it to. The
/// delta column is the simulated-makespan ratio vs. the exhaustive search
/// (1.0 = no quality loss); evals counts the surviving search effort.
#[test]
fn bounded_beam_makespan_deltas_match_golden_table() {
    let mut out = String::new();
    for (name, model, points) in zoo_cells() {
        let devices = 16;
        let mini_batch = mini_batch_at(&points, devices);
        let cluster = Cluster::summit_like(devices);
        let simulate = |plan: &Plan| {
            graphpipe::simulate_plan(&model, &cluster, plan)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .iteration_time
        };
        let exhaustive = GraphPipePlanner::with_options(base_options())
            .plan(&model, &cluster, mini_batch)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let base_makespan = simulate(&exhaustive);
        for beam in [4u32, 8, 16] {
            let pruned = GraphPipePlanner::with_options(base_options().with_beam_width(beam))
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name} beam={beam}: {e}"));
            let _ = writeln!(
                out,
                "{name} beam={beam} delta={:.6} evals={} prunes={}",
                simulate(&pruned) / base_makespan,
                pruned.stats.dp_evals,
                pruned.stats.beam_prunes,
            );
        }
    }
    assert_eq!(
        out.trim(),
        EXPECTED_BEAM_TABLE.trim(),
        "\n--- actual table (paste over EXPECTED_BEAM_TABLE if intended) ---\n{out}"
    );
}

/// Note `delta` may dip below 1.0 (moe at beam=4): the DP minimizes
/// *estimated* bottleneck TPS, while this column is the *simulated*
/// makespan, so a pruned search can land on a plan that happens to
/// simulate faster than the exhaustive optimum.
const EXPECTED_BEAM_TABLE: &str = "\
mmt beam=4 delta=1.000000 evals=598929 prunes=918
mmt beam=8 delta=1.000000 evals=926293 prunes=0
mmt beam=16 delta=1.000000 evals=926293 prunes=0
dlrm beam=4 delta=1.000000 evals=352479 prunes=13466
dlrm beam=8 delta=1.000000 evals=487946 prunes=0
dlrm beam=16 delta=1.000000 evals=487946 prunes=0
candle-uno beam=4 delta=1.000000 evals=182572 prunes=1491
candle-uno beam=8 delta=1.000000 evals=268150 prunes=0
candle-uno beam=16 delta=1.000000 evals=268150 prunes=0
candle-uno-full beam=4 delta=1.000000 evals=759222 prunes=46240
candle-uno-full beam=8 delta=1.000000 evals=994472 prunes=0
candle-uno-full beam=16 delta=1.000000 evals=994472 prunes=0
moe beam=4 delta=0.909262 evals=265238 prunes=26080
moe beam=8 delta=1.000000 evals=517923 prunes=1224
moe beam=16 delta=1.000000 evals=554730 prunes=0
";

/// Warm-start is a search accelerator, not a search restriction: a plan
/// seeded from a smaller configuration's strategy must be identical to
/// the cold plan — same stage graph, schedule, and plan fingerprint —
/// across the zoo, at every scale, with and without a beam. Search effort
/// is the only thing allowed to change.
#[test]
fn warm_started_plans_are_identical_to_cold() {
    for (name, model, points) in zoo_cells() {
        // Seed every scale from the 8-GPU strategy (the PlanService
        // near-miss shape: same graph, different cluster size).
        let seed_devices = 8usize;
        let seed = GraphPipePlanner::with_options(base_options())
            .plan(
                &model,
                &Cluster::summit_like(seed_devices),
                mini_batch_at(&points, seed_devices),
            )
            .unwrap_or_else(|e| panic!("{name} seed: {e}"));
        for (devices, mini_batch) in points.into_iter().filter(|&(d, _)| d >= 16) {
            // Exhaustive at 16 GPUs; beamed at 32+ to keep debug-mode
            // test time in check (beam + warm is also the configuration
            // the 128-GPU CI smoke pins).
            let opts = if devices >= 32 {
                base_options().with_beam_width(8)
            } else {
                base_options()
            };
            let warm = WarmStart::from_plan(&seed, seed_devices as u32, devices as u32);
            let cluster = Cluster::summit_like(devices);
            let cold = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let warmed = GraphPipePlanner::with_options(opts)
                .with_warm_start(warm)
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices} (warm): {e}"));
            assert_eq!(
                plan_fingerprint(&warmed),
                plan_fingerprint(&cold),
                "{name}@{devices}: warm fingerprint diverged from cold"
            );
            assert_eq!(warmed.stage_graph, cold.stage_graph, "{name}@{devices}");
            assert_eq!(warmed.schedule, cold.schedule, "{name}@{devices}");
            assert_eq!(warmed.in_flight, cold.in_flight, "{name}@{devices}");
            assert_eq!(
                warmed.bottleneck_tps, cold.bottleneck_tps,
                "{name}@{devices}"
            );
            assert!(
                warmed.stats.binary_iters <= cold.stats.binary_iters,
                "{name}@{devices}: warm walk took more bracket iterations"
            );
        }
    }
}

/// The speculative parallel planner must reproduce the sequential plan
/// bit-for-bit under the full option surface this PR adds — bounded beam
/// plus a warm-start seed — not just at defaults.
#[test]
fn parallel_planner_parity_under_beam_and_warm_start() {
    for (name, model, points) in zoo_cells() {
        let devices = 16usize;
        let mini_batch = mini_batch_at(&points, devices);
        let seed = GraphPipePlanner::with_options(base_options())
            .plan(&model, &Cluster::summit_like(8), mini_batch_at(&points, 8))
            .unwrap_or_else(|e| panic!("{name} seed: {e}"));
        let opts = base_options().with_beam_width(4);
        let warm = || WarmStart::from_plan(&seed, 8, devices as u32);
        let cluster = Cluster::summit_like(devices);
        let seq = GraphPipePlanner::with_options(opts.clone())
            .with_warm_start(warm())
            .plan(&model, &cluster, mini_batch)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let par = ParallelPlanner::with_options(opts, 3)
            .with_warm_start(warm())
            .plan(&model, &cluster, mini_batch)
            .unwrap_or_else(|e| panic!("{name} (parallel): {e}"));
        assert_eq!(strip(seq), strip(par), "{name}");
    }
}
