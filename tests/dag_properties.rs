//! Property wall for the arbitrary-DAG planning ladder (`gp_ir::dag`).
//!
//! Two families of guarantees (DESIGN.md §"Arbitrary DAGs"):
//!
//! * **Recognition parity** — on every hand-authored zoo model, dropping
//!   the authored SP tree and re-recovering it from the raw graph yields a
//!   byte-identical tree, model fingerprint, and plan fingerprint. The
//!   hand tree is redundant; recognition is canonical.
//! * **SP-ization soundness** — on *randomly generated* DAGs (residual
//!   meshes the decomposition cannot represent exactly), whatever rung the
//!   ladder lands on, no dependency edge is ever lost, the linearization
//!   stays topological, and the distortion reported by the SP-ized path
//!   equals an independent recomputation of the added transit volume.

use gp_ir::dag::{edge_cover_violations, plan_dag, recognize, transit_volume, DagOptions};
use gp_ir::{zoo, Graph, GraphBuilder, OpKind, PlanPath, Shape, SpModel};
use gp_serve::fingerprint::{model_fingerprint, request_fingerprint};
use graphpipe::prelude::*;
use proptest::prelude::*;

/// Every hand-authored SP model in the zoo, by name.
fn authored_zoo() -> Vec<SpModel> {
    vec![
        zoo::mmt(&zoo::MmtConfig::tiny()),
        zoo::dlrm(&zoo::DlrmConfig::tiny()),
        zoo::candle_uno(&zoo::CandleUnoConfig::tiny()),
        zoo::sequential_transformer(2, &zoo::MmtConfig::tiny()),
        zoo::case_study(&zoo::MmtConfig::tiny()),
        zoo::moe(&zoo::MoeConfig::tiny()),
        zoo::mlp_chain(4, 64),
    ]
}

/// Dropping the hand-authored tree and recovering it by recognition gives
/// the same tree, the same model fingerprint, and — through the planner —
/// the same plan fingerprint, for every zoo model.
#[test]
fn recognition_reproduces_every_authored_zoo_tree() {
    let cluster = Cluster::summit_like(4);
    for hand in authored_zoo() {
        let name = hand.name().to_string();
        let root = recognize(hand.graph())
            .unwrap_or_else(|| panic!("{name}: zoo model is SP but recognition failed"));
        let recovered = SpModel::new(&name, hand.graph().clone(), root)
            .unwrap_or_else(|e| panic!("{name}: recognized tree rejected: {e}"));
        assert_eq!(
            recovered.root(),
            hand.root(),
            "{name}: recognized tree differs from the authored one"
        );
        assert_eq!(recovered.path(), PlanPath::ExactSp);
        assert_eq!(
            model_fingerprint(&recovered),
            model_fingerprint(&hand),
            "{name}: model fingerprints diverge"
        );
        let opts = PlanOptions::default();
        assert_eq!(
            request_fingerprint(&recovered, &cluster, 32, &opts, 0),
            request_fingerprint(&hand, &cluster, 32, &opts, 0),
            "{name}: plan-request fingerprints diverge"
        );
    }
}

/// The same parity, driven end to end through `plan_dag`: feeding a zoo
/// model's raw graph to the ladder takes the exact-SP rung and plans to
/// the identical strategy.
#[test]
fn plan_dag_takes_the_exact_rung_on_every_authored_zoo_graph() {
    let cluster = Cluster::summit_like(4);
    for hand in authored_zoo() {
        let name = hand.name().to_string();
        let laddered = plan_dag(&name, hand.graph().clone(), &DagOptions::default())
            .unwrap_or_else(|e| panic!("{name}: plan_dag rejected a zoo graph: {e}"));
        assert_eq!(laddered.path(), PlanPath::ExactSp, "{name}");
        // Per-phase search walls are machine time, not plan data.
        let mut a = GraphPipePlanner::new()
            .plan(&laddered, &cluster, 32)
            .unwrap();
        let mut b = GraphPipePlanner::new().plan(&hand, &cluster, 32).unwrap();
        a.stats.zero_walls();
        b.stats.zero_walls();
        assert_eq!(a, b, "{name}: plans diverge");
    }
}

/// Builds a random layered DAG from proptest-drawn structure: one input,
/// `picks.len()` intermediate operators (each a `linear` on one
/// predecessor or an elementwise `Add` of several — the shape that
/// produces residual meshes), and a single `Add → linear → loss` tail
/// collecting every dangling output so the graph validates.
fn build_dag(picks: &[(usize, usize)]) -> Graph {
    const DIM: usize = 16;
    let mut b = GraphBuilder::new();
    let input = b.input("x", Shape::vector(DIM));
    let mut nodes = vec![input];
    let mut has_succ = vec![false];
    for (i, &(pick, fan_in)) in picks.iter().enumerate() {
        let mut preds = Vec::new();
        for j in 0..fan_in {
            // Deterministic pseudo-spread over all earlier nodes; dedup
            // below keeps the op well-formed when picks collide.
            let k = (pick + j * (pick / 7 + 1)) % nodes.len();
            if !preds.contains(&nodes[k]) {
                preds.push(nodes[k]);
                has_succ[k] = true;
            }
        }
        let node = if preds.len() == 1 {
            b.linear(format!("fc{i}"), preds[0], DIM, true).unwrap()
        } else {
            b.op(format!("add{i}"), OpKind::Add, &preds).unwrap()
        };
        nodes.push(node);
        has_succ.push(false);
    }
    let dangling: Vec<gp_ir::OpId> = nodes
        .iter()
        .zip(&has_succ)
        .filter(|(_, &s)| !s)
        .map(|(&n, _)| n)
        .collect();
    let tail = if dangling.len() >= 2 {
        b.op("merge", OpKind::Add, &dangling).unwrap()
    } else {
        dangling[0]
    };
    let head = b.linear("head", tail, 1, true).unwrap();
    let loss = b.loss("loss", &[head]);
    let _ = loss;
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever rung the ladder lands on, planning an arbitrary DAG never
    /// loses a dependency edge, keeps the linearization topological, and
    /// reports a distortion that matches an independent recomputation.
    #[test]
    fn sp_ization_preserves_every_edge(
        picks in proptest::collection::vec((0usize..997, 1usize..4), 1..20),
    ) {
        let graph = build_dag(&picks);
        let model = plan_dag("rand", graph.clone(), &DagOptions::default())
            .expect("generated graphs validate");
        // Original dependency set ⊆ planned dependency closure: every data
        // edge is admitted by the tree as forward chain order.
        prop_assert!(
            edge_cover_violations(&graph, model.root()).is_empty(),
            "ladder lost an edge on path {}", model.path()
        );
        let order = model.linearize();
        prop_assert_eq!(order.len(), graph.len());
        prop_assert!(graph.is_topo_order(&order));
        match model.path() {
            PlanPath::ExactSp => {
                // The exact rung must agree with standalone recognition.
                // (Exact trees can still have positive transit volume —
                // residual skips along a totally ordered chain, as in
                // `zoo::gpt2` — that volume is inherent to the DAG, not a
                // distortion SP-ization introduced, so it is not reported.)
                prop_assert!(recognize(&graph).is_some());
            }
            PlanPath::SpIzed { distortion } => {
                prop_assert!(recognize(&graph).is_none());
                prop_assert_eq!(distortion, transit_volume(&graph, model.root()));
            }
            PlanPath::Clustered { .. } => {
                // Unreachable under the default 1 GiB budget for these tiny
                // graphs; tested separately below.
                prop_assert!(false, "tiny graphs never exceed the default budget");
            }
        }
    }

    /// A zero distortion budget forces the clustering rung on every
    /// non-SP graph — and even the flat fallback chain still covers the
    /// full dependency set.
    #[test]
    fn clustering_fallback_still_covers_all_edges(
        picks in proptest::collection::vec((0usize..997, 1usize..4), 1..20),
        unit_ops in 1u32..6,
    ) {
        let graph = build_dag(&picks);
        let opts = DagOptions::default()
            .with_distortion_budget(0)
            .with_unit_ops(unit_ops);
        let model = plan_dag("rand", graph.clone(), &opts).expect("generated graphs validate");
        prop_assert!(edge_cover_violations(&graph, model.root()).is_empty());
        match model.path() {
            PlanPath::ExactSp => prop_assert!(recognize(&graph).is_some()),
            PlanPath::SpIzed { distortion } => {
                // Budget 0 only admits SP-ization when it is free.
                prop_assert_eq!(distortion, 0);
            }
            PlanPath::Clustered { units } => {
                prop_assert_eq!(units, (graph.len() as u32).div_ceil(unit_ops));
                prop_assert!(units >= 1 && units as usize <= graph.len());
            }
        }
    }

    /// Arbitrary-DAG strategies survive the planner, the verifier, and the
    /// artifact codec: the plan path lands in the plan, round-trips through
    /// encode/decode, and `verify_strategy` accepts the decoded strategy.
    #[test]
    fn dag_strategies_verify_and_round_trip(
        picks in proptest::collection::vec((0usize..997, 1usize..4), 4..16),
        devices in 2usize..5,
    ) {
        use graphpipe::serve::artifact;
        let graph = build_dag(&picks);
        let model = plan_dag("rand", graph.clone(), &DagOptions::default())
            .expect("generated graphs validate");
        let cluster = Cluster::summit_like(devices);
        let plan = GraphPipePlanner::new()
            .plan(&model, &cluster, 16)
            .expect("tiny models always fit");
        prop_assert_eq!(plan.path, model.path());
        let report = verify_strategy(&model, &cluster, &plan);
        prop_assert!(report.is_clean(), "verifier rejected a fresh plan: {}", report);
        let text = artifact::encode_plan(&plan, None);
        let (decoded, _) = artifact::decode_plan(&text, model.graph(), &cluster)
            .expect("own artifacts decode");
        prop_assert_eq!(decoded.path, plan.path, "plan path lost in the codec");
    }
}
