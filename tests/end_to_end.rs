//! Cross-crate integration tests: planners, scheduler, simulator and the
//! threaded runtime working together on the paper's workloads.

use graphpipe::exec::{reference_step, synth_batch, train_iteration, ModelParams};
use graphpipe::prelude::*;
use graphpipe::PlannerKind;

#[test]
fn every_planner_produces_valid_strategies() {
    let model = zoo::mmt(&zoo::MmtConfig::two_branch());
    let cluster = Cluster::summit_like(4);
    for kind in [
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ] {
        let plan = graphpipe::planner(kind, PlanOptions::default())
            .plan(&model, &cluster, 64)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.label()));
        // C1-C3 are enforced by the StageGraph constructor; C4 re-checked.
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
        // All devices used exactly once.
        let used: usize = plan.stage_graph.stages().map(|s| s.dp_degree()).sum();
        assert_eq!(used, 4, "{}", kind.label());
        // The schedule simulates without deadlock.
        let report = graphpipe::simulate_plan(&model, &cluster, &plan).unwrap();
        assert!(report.throughput > 0.0);
    }
}

#[test]
fn gpp_beats_spp_on_every_multi_branch_model() {
    // The Figure 6 headline, at a scale CI can afford.
    let cluster = Cluster::summit_like(8);
    let cases = [
        ("mmt", zoo::mmt(&zoo::MmtConfig::default()), 128u64),
        ("dlrm", zoo::dlrm(&zoo::DlrmConfig::default()), 512),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
            8192,
        ),
    ];
    let opts = PlanOptions {
        max_micro_batches: 64,
        ..PlanOptions::default()
    };
    for (name, model, mini_batch) in cases {
        let gp = graphpipe::evaluate(&model, &cluster, mini_batch, PlannerKind::GraphPipe, &opts)
            .unwrap();
        let pd = graphpipe::evaluate(&model, &cluster, mini_batch, PlannerKind::PipeDream, &opts)
            .unwrap();
        assert!(
            gp.report.throughput >= pd.report.throughput * 0.99,
            "{name}: GraphPipe {:.0} < PipeDream {:.0}",
            gp.report.throughput,
            pd.report.throughput
        );
    }
}

#[test]
fn sequential_models_show_parity() {
    // Appendix A.3: without branches the three planners perform alike.
    let model = zoo::sequential_transformer(16, &zoo::MmtConfig::default());
    let cluster = Cluster::summit_like(4);
    let opts = PlanOptions {
        max_micro_batches: 64,
        ..PlanOptions::default()
    };
    let gp = graphpipe::evaluate(&model, &cluster, 64, PlannerKind::GraphPipe, &opts).unwrap();
    let pd = graphpipe::evaluate(&model, &cluster, 64, PlannerKind::PipeDream, &opts).unwrap();
    let ratio = gp.report.throughput / pd.report.throughput;
    assert!((0.9..=1.15).contains(&ratio), "parity broken: {ratio:.3}");
}

#[test]
fn gpp_reduces_pipeline_depth_and_memory_on_branchy_models() {
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::default());
    let cluster = Cluster::summit_like(16);
    // Same forced micro-batch isolates the structural effect (§7.3 right).
    let opts = PlanOptions::default().with_forced_micro_batch(64);
    let gp = graphpipe::planner(PlannerKind::GraphPipe, opts.clone())
        .plan(&model, &cluster, 16384)
        .unwrap();
    let pd = graphpipe::planner(PlannerKind::PipeDream, opts)
        .plan(&model, &cluster, 16384)
        .unwrap();
    assert!(
        gp.pipeline_depth() < pd.pipeline_depth(),
        "GPP depth {} !< SPP depth {}",
        gp.pipeline_depth(),
        pd.pipeline_depth()
    );
    let gp_mem = graphpipe::simulate_plan(&model, &cluster, &gp)
        .unwrap()
        .max_peak_memory();
    let pd_mem = graphpipe::simulate_plan(&model, &cluster, &pd)
        .unwrap()
        .max_peak_memory();
    assert!(
        gp_mem <= pd_mem,
        "GPP peak memory {gp_mem} !<= SPP {pd_mem}"
    );
}

#[test]
fn piper_explodes_on_eight_branch_models_only() {
    let cluster = Cluster::summit_like(4);
    // Two branches: fine.
    let small = zoo::mmt(&zoo::MmtConfig::two_branch());
    assert!(PiperPlanner::new().plan(&small, &cluster, 64).is_ok());
    // Eight-plus branches: the paper's ✗.
    for model in [
        zoo::dlrm(&zoo::DlrmConfig::default()),
        zoo::candle_uno(&zoo::CandleUnoConfig::default()),
    ] {
        let err = PiperPlanner::new().plan(&model, &cluster, 256).unwrap_err();
        assert!(matches!(err, PlanError::SearchExplosion { .. }), "{err:?}");
    }
}

#[test]
fn planner_strategy_trains_correctly_on_the_real_runtime() {
    // Full pipeline: GraphPipe plan -> threaded execution -> gradient
    // equivalence against single-device training, then convergence.
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::tiny());
    let cluster = Cluster::summit_like(3).with_memory_capacity(1 << 30);
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 8).unwrap();
    let graph = model.graph();
    let batch = synth_batch(graph, 8, 11);
    let init = ModelParams::init(graph, 5);

    let (ref_loss, ref_grads) = reference_step(graph, &init, &batch, 8);
    let mut expect = init.clone();
    expect.sgd_step(&ref_grads, 1.0);

    let mut dist = init.clone();
    let result = train_iteration(
        graph,
        &plan.stage_graph,
        &plan.schedule,
        &mut dist,
        &batch,
        1.0,
    )
    .unwrap();
    assert!((result.loss - ref_loss).abs() / ref_loss < 1e-3);
    assert!(dist.max_abs_diff(&expect) < 5e-4);

    let mut params = init;
    let losses = graphpipe::exec::train(
        graph,
        &plan.stage_graph,
        &plan.schedule,
        &mut params,
        &batch,
        0.05,
        5,
    )
    .unwrap();
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "{losses:?}"
    );
}

#[test]
fn simulator_and_scheduler_agree_on_memory() {
    let model = zoo::mmt(&zoo::MmtConfig::default());
    let cluster = Cluster::summit_like(8);
    let plan = GraphPipePlanner::new().plan(&model, &cluster, 128).unwrap();
    let report = graphpipe::simulate_plan(&model, &cluster, &plan).unwrap();
    assert!(report.max_peak_memory() <= plan.peak_memory_bytes);
    assert!(plan.peak_memory_bytes <= cluster.profile().mem_capacity);
}

#[test]
fn ablation_sits_between_spp_and_graphpipe() {
    // Figure 9's ordering: SPP <= Parallel <= (approximately) GraphPipe.
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::default());
    let cluster = Cluster::summit_like(16);
    let mini_batch = 16384;
    let opts = PlanOptions {
        max_micro_batches: 64,
        ..PlanOptions::default()
    };
    let spp = graphpipe::evaluate(&model, &cluster, mini_batch, PlannerKind::PipeDream, &opts)
        .unwrap()
        .report
        .throughput;
    let par_plan = parallel_ablation(&model, &cluster, mini_batch).unwrap();
    let par = graphpipe::simulate_plan(&model, &cluster, &par_plan)
        .unwrap()
        .throughput;
    let gpp = graphpipe::evaluate(&model, &cluster, mini_batch, PlannerKind::GraphPipe, &opts)
        .unwrap()
        .report
        .throughput;
    assert!(par >= spp * 0.99, "Parallel {par:.0} < SPP {spp:.0}");
    assert!(gpp >= par * 0.99, "GraphPipe {gpp:.0} < Parallel {par:.0}");
}
