//! Facade smoke test: the public API surface the README advertises —
//! `graphpipe::Session`, `graphpipe::prelude`, the `planner` / `evaluate` /
//! `simulate_plan` shims, and `sched::compute_in_flight` — must resolve and
//! run end-to-end on a small zoo model. Guards the facade crate's re-export
//! wiring: a missing `pub use` breaks this file at compile time.

use graphpipe::prelude::*;
use graphpipe::sched::compute_in_flight;

/// Everything a first-time user touches, on one small model.
#[test]
fn facade_surface_resolves_and_runs() {
    let model = zoo::mmt(&zoo::MmtConfig::two_branch());
    let cluster = Cluster::summit_like(4);

    // `planner` factory covers every PlannerKind.
    for kind in [
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ] {
        let p = graphpipe::planner(kind, PlanOptions::default());
        assert_eq!(p.name(), kind.label().to_lowercase());
    }

    // Plan → simulate via the two top-level helpers.
    let plan = GraphPipePlanner::new()
        .plan(&model, &cluster, 64)
        .expect("two-branch MMT plans on 4 devices");
    let report = graphpipe::simulate_plan(&model, &cluster, &plan).expect("plan simulates");
    assert!(report.throughput > 0.0);
    assert!(plan.bottleneck_tps > 0.0);

    // `evaluate` sweeps micro-batch sizes and returns the best measured.
    let opts = PlanOptions {
        max_micro_batches: 16,
        ..PlanOptions::default()
    };
    let eval = graphpipe::evaluate(&model, &cluster, 64, PlannerKind::GraphPipe, &opts)
        .expect("sweep finds at least one feasible plan");
    assert!(!eval.per_micro_batch.is_empty());
    for &(_, t) in &eval.per_micro_batch {
        assert!(t <= eval.report.throughput + 1e-9);
    }

    // The §6 closed form is reachable through the facade and reduces to the
    // classic 1F1B increment on a uniform chain.
    assert_eq!(compute_in_flight(1, 4, 1, 4, 8), 12);

    // The Session front door covers the same ground with typed artifacts.
    let session = Session::builder()
        .model(model.clone())
        .cluster(cluster.clone())
        .mini_batch(64)
        .options(opts)
        .build()
        .expect("session builds");
    let strategy = session.plan(PlannerKind::GraphPipe).expect("session plans");
    assert!(strategy.simulate().expect("strategy simulates").throughput > 0.0);
    assert_eq!(
        strategy.fingerprint(),
        session.request(PlannerKind::GraphPipe).fingerprint()
    );
}

/// The re-exported module tree exposes the documented submodules.
#[test]
fn facade_modules_resolve() {
    // Types reached through each re-exported module path; pure name
    // resolution, so failures surface as compile errors.
    let _cluster: graphpipe::cluster::Cluster = Cluster::summit_like(2);
    let _shape = graphpipe::ir::Shape::vector(8);
    let _kind: graphpipe::partition::PlanOptions = PlanOptions::default();
    let _stage_id = graphpipe::sched::StageId(0);
    let _tensor = graphpipe::tensor::Tensor::zeros(vec![2, 2]);
    assert_eq!(graphpipe::PlannerKind::GraphPipe.label(), "GraphPipe");
}
