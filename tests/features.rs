//! Feature-level integration tests: the paper's optional/extension modes
//! (per-stage micro-batch sizes, kFkB schedules beyond 1F1B), strategy
//! serialization, and cross-planner consistency on degenerate topologies.

use graphpipe::prelude::*;
use graphpipe::sched::{assign_in_flight, schedule_tasks, StageGraph, StageId};
use graphpipe::PlannerKind;

/// §6: "users can choose to search over per-stage micro-batch sizes" — the
/// generalized mode must produce valid strategies that may mix sizes, and
/// never do worse (by planner estimate) than the uniform default.
#[test]
fn per_stage_micro_batch_mode_plans_valid_strategies() {
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::tiny());
    let cluster = Cluster::summit_like(3).with_memory_capacity(1 << 30);
    let opts = PlanOptions {
        per_stage_micro_batch: true,
        micro_batch_candidates: Some(vec![2, 4]),
        ..PlanOptions::default()
    };
    let plan = GraphPipePlanner::with_options(opts)
        .plan(&model, &cluster, 8)
        .unwrap();
    plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    // Every stage size is one of the candidates and divides the mini-batch.
    for s in plan.stage_graph.stages() {
        assert!([2, 4].contains(&s.micro_batch), "b={}", s.micro_batch);
    }
    // The generalized schedule still simulates and executes.
    let report = graphpipe::simulate_plan(&model, &cluster, &plan).unwrap();
    assert!(report.throughput > 0.0);
}

/// kFkB schedules with k > 1 are searchable and produce valid plans.
#[test]
fn kfkb_candidates_are_searched() {
    let model = zoo::mlp_chain(6, 64);
    let cluster = Cluster::summit_like(3);
    let opts = PlanOptions {
        kfkb_candidates: vec![1, 2],
        ..PlanOptions::default()
    };
    let plan = GraphPipePlanner::with_options(opts)
        .plan(&model, &cluster, 16)
        .unwrap();
    plan.schedule.validate_c4(&plan.stage_graph).unwrap();
    assert!(plan
        .stage_graph
        .stages()
        .all(|s| s.kfkb == 1 || s.kfkb == 2));
    let report = graphpipe::simulate_plan(&model, &cluster, &plan).unwrap();
    assert!(report.throughput > 0.0);
}

/// A hand-built per-stage-k strategy schedules and simulates correctly.
#[test]
fn explicit_2f2b_schedule_executes() {
    use graphpipe::cluster::DeviceRange;
    use graphpipe::sched::Stage;
    let model = zoo::mlp_chain(4, 32);
    let cluster = Cluster::tiny_test(2);
    let ops = model.linearize();
    let stages = vec![
        Stage {
            id: StageId(0),
            ops: ops[..5].to_vec(),
            devices: DeviceRange::new(0, 1),
            micro_batch: 2,
            kfkb: 2,
        },
        Stage {
            id: StageId(1),
            ops: ops[5..].to_vec(),
            devices: DeviceRange::new(1, 1),
            micro_batch: 2,
            kfkb: 2,
        },
    ];
    let sg = StageGraph::new(model.graph(), &cluster, stages, 16).unwrap();
    let inflight = assign_in_flight(&sg);
    // 2F2B sink keeps k*b = 4 samples; upstream adds per Table 2.
    assert_eq!(inflight.samples(StageId(1)), 4);
    assert!(inflight.samples(StageId(0)) > 4);
    let schedule = schedule_tasks(&sg, &inflight);
    schedule.validate_c4(&sg).unwrap();
    let report = gp_sim::simulate(model.graph(), &cluster, &sg, &schedule).unwrap();
    assert!(report.throughput > 0.0);
}

/// Strategy types implement `Serialize`/`Deserialize` (what a control
/// plane would persist); checked at the type level.
#[test]
fn strategy_types_are_serde() {
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<graphpipe::sched::StageGraph>();
    assert_serde::<graphpipe::sched::PipelineSchedule>();
    assert_serde::<graphpipe::sched::InFlightTable>();
    assert_serde::<graphpipe::sim::SimReport>();
    assert_serde::<graphpipe::partition::SearchStats>();
}

/// Degenerate topologies: a single-op-per-branch model plans fine.
#[test]
fn single_op_branches_plan() {
    use graphpipe::ir::{GraphBuilder, OpKind, Shape, SpBlock, SpModel};
    let mut b = GraphBuilder::new();
    let mut branch_blocks = Vec::new();
    let mut outs = Vec::new();
    for i in 0..3 {
        let x = b.input(format!("x{i}"), Shape::vector(64));
        let fc = b.linear(format!("fc{i}"), x, 64, true).unwrap();
        branch_blocks.push(SpBlock::Chain(vec![SpBlock::Leaf(x), SpBlock::Leaf(fc)]));
        outs.push(fc);
    }
    let cat = b.op("cat", OpKind::Concat, &outs).unwrap();
    let loss = b.loss("loss", &[cat]);
    let model = SpModel::new(
        "stub",
        b.finish().unwrap(),
        SpBlock::Chain(vec![
            SpBlock::Branches(branch_blocks),
            SpBlock::Leaf(cat),
            SpBlock::Leaf(loss),
        ]),
    )
    .unwrap();
    for devices in [1usize, 2, 3, 4] {
        let cluster = Cluster::summit_like(devices);
        let plan = GraphPipePlanner::new().plan(&model, &cluster, 16).unwrap();
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
        assert!(
            graphpipe::simulate_plan(&model, &cluster, &plan)
                .unwrap()
                .throughput
                > 0.0
        );
    }
}

/// One device degenerates to a single stage for every planner.
#[test]
fn single_device_is_a_single_stage() {
    let model = zoo::mmt(&zoo::MmtConfig::tiny());
    let cluster = Cluster::summit_like(1).with_memory_capacity(1 << 30);
    for kind in [
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ] {
        let plan = graphpipe::planner(kind, PlanOptions::default())
            .plan(&model, &cluster, 8)
            .unwrap();
        assert_eq!(plan.stage_graph.len(), 1, "{}", kind.label());
        assert_eq!(plan.pipeline_depth(), 1);
    }
}

/// The evaluate() sweep respects explicit candidate lists.
#[test]
fn evaluate_uses_explicit_candidates() {
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::tiny());
    let cluster = Cluster::summit_like(2).with_memory_capacity(1 << 30);
    let opts = PlanOptions {
        micro_batch_candidates: Some(vec![2, 8]),
        ..PlanOptions::default()
    };
    let res = graphpipe::evaluate(&model, &cluster, 16, PlannerKind::GraphPipe, &opts).unwrap();
    let swept: Vec<u64> = res.per_micro_batch.iter().map(|(b, _)| *b).collect();
    assert_eq!(swept, vec![2, 8]);
}

/// SPP strategies really are sequential: every stage depends on its
/// predecessor even when the data graph does not require it.
#[test]
fn spp_sequentiality_is_enforced() {
    let model = zoo::candle_uno(&zoo::CandleUnoConfig::default());
    let cluster = Cluster::summit_like(8);
    let plan = PipeDreamPlanner::new()
        .plan(&model, &cluster, 1024)
        .unwrap();
    for i in 1..plan.stage_graph.len() as u32 {
        assert!(
            plan.stage_graph.preds(StageId(i)).contains(&StageId(i - 1)),
            "stage {i} lacks the imposed sequential edge"
        );
    }
}
