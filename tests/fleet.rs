//! Integration tests for the `gp-fleet` distributed serving layer: the
//! remote-equals-local determinism contract, crash/restart durability of
//! the artifact store, the fingerprint-range shard partition, and the
//! tenant-facing `Session::serve_fleet` surface.

use graphpipe::cluster::Cluster;
use graphpipe::fleet::{
    canonical_artifact, plan_locally, shard_of, AdmissionConfig, FleetConfig, FleetService,
    PlanWorker, RemoteWorker, Served, TenantClass, TenantSpec, WorkerServer,
};
use graphpipe::ir::zoo::{self, CandleUnoConfig, DlrmConfig, MmtConfig, MoeConfig};
use graphpipe::ir::SpModel;
use graphpipe::obs::Telemetry;
use graphpipe::prelude::*;
use graphpipe::serve::{PlanRequest, ServePlanner};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every zoo model at test scale, paired with a mini-batch that divides
/// cleanly.
fn zoo_models() -> Vec<(Arc<SpModel>, u64)> {
    vec![
        (Arc::new(zoo::mmt(&MmtConfig::tiny())), 32),
        (Arc::new(zoo::dlrm(&DlrmConfig::tiny())), 64),
        (Arc::new(zoo::candle_uno(&CandleUnoConfig::tiny())), 32),
        (Arc::new(zoo::moe(&MoeConfig::tiny())), 32),
        (
            Arc::new(zoo::sequential_transformer(4, &MmtConfig::tiny())),
            32,
        ),
    ]
}

fn zoo_requests() -> Vec<PlanRequest> {
    let cluster = Cluster::summit_like(4);
    zoo_models()
        .into_iter()
        .map(|(model, mini_batch)| PlanRequest::new(model, cluster.clone(), mini_batch))
        .collect()
}

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gp-fleet-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The acceptance criterion of the fleet layer: for every zoo model, an
/// artifact planned by a remote worker over the wire protocol is
/// byte-identical to one planned in-process — same fingerprint header,
/// same encoded bytes.
#[test]
fn remote_planning_is_byte_identical_to_local_for_every_zoo_model() {
    let mut server = WorkerServer::bind("127.0.0.1:0", Telemetry::disabled()).unwrap();
    let remote = RemoteWorker::new(server.addr().to_string());
    let mut checked = 0;
    for request in zoo_requests() {
        let local = plan_locally(&request, None, &Telemetry::disabled()).expect("local plan");
        let served = remote.plan(&request, None).expect("remote plan");
        assert_eq!(
            served,
            local,
            "remote/local artifact divergence for model `{}`",
            request.model.name()
        );
        checked += 1;
    }
    // One baseline planner through the same wire path.
    let baseline = zoo_requests()
        .remove(1)
        .with_planner(ServePlanner::PipeDream);
    assert_eq!(
        remote.plan(&baseline, None).expect("remote baseline plan"),
        plan_locally(&baseline, None, &Telemetry::disabled()).expect("local baseline plan"),
    );
    checked += 1;
    assert_eq!(server.served() as usize, checked);
    server.shutdown();
}

/// Crash/restart durability: plan through a store-backed fleet, drop the
/// whole service, reopen the store — every previously planned request is
/// served from disk, fingerprint-identical and with zero planner runs.
#[test]
fn warm_restart_replays_the_store_without_replanning() {
    let dir = TempDir::new("restart");
    let config = || FleetConfig {
        shards: 2,
        store: Some(dir.path().to_path_buf()),
        ..FleetConfig::default()
    };

    let requests = zoo_requests();
    let mut first_run = Vec::new();
    {
        let fleet = FleetService::start(config()).unwrap();
        for request in &requests {
            let ticket = fleet.submit("t", request.clone()).unwrap();
            let fp = ticket.fingerprint();
            let plan = ticket.wait().expect("cold plan");
            first_run.push((fp, canonical_artifact(&plan, fp)));
        }
        assert_eq!(fleet.stats().planner_runs as usize, requests.len());
        // FleetService::drop shuts the pool down — the "crash".
    }

    let fleet = FleetService::start(config()).unwrap();
    assert_eq!(
        fleet.store().unwrap().len(),
        requests.len(),
        "restart must see every persisted artifact"
    );
    for (request, (fp, bytes)) in requests.iter().zip(&first_run) {
        let ticket = fleet.submit("t", request.clone()).unwrap();
        assert_eq!(ticket.fingerprint(), *fp);
        assert_eq!(
            ticket.served(),
            Served::Store,
            "warm restart must serve `{}` from the store",
            request.model.name()
        );
        let plan = ticket.wait().expect("warm plan");
        assert_eq!(
            &canonical_artifact(&plan, *fp),
            bytes,
            "artifact bytes drifted"
        );
    }
    let stats = fleet.stats();
    assert_eq!(stats.planner_runs, 0, "a warm restart must never replan");
    assert_eq!(stats.store_hits as usize, requests.len());

    // Once decoded, repeats come from the shard cache, not the disk.
    let repeat = fleet.submit("t", requests[0].clone()).unwrap();
    assert_eq!(repeat.served(), Served::Cache);
    repeat.wait().expect("cached plan");
}

/// Property: fingerprint-range sharding partitions the zoo's request
/// fingerprints — every request maps to exactly one shard, and for
/// 2..=8 shards no shard receives zero keys or all of them.
#[test]
fn fingerprint_range_sharding_partitions_zoo_requests() {
    // Spread the key population the way a fleet sees it: every zoo model
    // at many mini-batch sizes and both planners.
    let cluster = Cluster::summit_like(4);
    let mut fingerprints = Vec::new();
    for (model, base) in zoo_models() {
        for scale in 1..=32u64 {
            let request = PlanRequest::new(Arc::clone(&model), cluster.clone(), base * scale);
            fingerprints.push(request.fingerprint());
            fingerprints.push(
                PlanRequest::new(Arc::clone(&model), cluster.clone(), base * scale)
                    .with_planner(ServePlanner::Piper)
                    .fingerprint(),
            );
        }
    }
    fingerprints.sort_by_key(|fp| fp.0);
    fingerprints.dedup();
    assert!(fingerprints.len() > 300, "want a meaningful key population");

    for shards in 2..=8usize {
        let mut counts = vec![0usize; shards];
        for &fp in &fingerprints {
            let shard = shard_of(fp, shards);
            assert!(shard < shards, "shard index out of range");
            counts[shard] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(count > 0, "shard {i}/{shards} received no keys: {counts:?}");
            assert!(
                count < fingerprints.len(),
                "shard {i}/{shards} received every key: {counts:?}"
            );
        }
    }
}

/// The session facade: `serve_fleet` plans with the session's own
/// fingerprints, tiers scope cache entries per tenant, and quota refusals
/// surface as `Error::Serve(Overloaded)`.
#[test]
fn session_serve_fleet_plans_tiers_and_sheds() {
    let session = Session::builder()
        .model(zoo::mmt(&MmtConfig::tiny()))
        .cluster(Cluster::summit_like(4))
        .mini_batch(32)
        .build()
        .unwrap();

    let fleet = session
        .serve_fleet(FleetConfig {
            admission: AdmissionConfig {
                tenants: vec![
                    (
                        "cheap".into(),
                        TenantSpec {
                            class: TenantClass::Batch,
                            tokens: None,
                        },
                    ),
                    (
                        "blocked".into(),
                        TenantSpec {
                            class: TenantClass::Standard,
                            tokens: Some(0),
                        },
                    ),
                ],
                ..AdmissionConfig::default()
            },
            ..FleetConfig::default()
        })
        .unwrap();

    // The default tenant is Standard: its fingerprint is the session's
    // request fingerprint with the Standard caps applied.
    let planned = fleet.plan(PlannerKind::GraphPipe).unwrap();
    let again = fleet.plan(PlannerKind::GraphPipe).unwrap();
    assert_eq!(planned.fingerprint(), again.fingerprint());
    assert_eq!(planned.plan(), again.plan());

    // A Batch-tier tenant gets a tier-scoped fingerprint (and plan entry).
    let cheap = fleet.plan_as("cheap", PlannerKind::GraphPipe).unwrap();
    assert_ne!(cheap.fingerprint(), planned.fingerprint());

    // A zero-token tenant is refused with the typed admission error.
    match fleet.plan_as("blocked", PlannerKind::GraphPipe) {
        Err(graphpipe::Error::Serve(graphpipe::serve::ServeError::Overloaded {
            tenant, ..
        })) => assert_eq!(tenant, "blocked"),
        other => panic!(
            "expected Overloaded, got {:?}",
            other.map(|s| s.fingerprint())
        ),
    }

    let stats = fleet.shutdown();
    assert_eq!(stats.quota_refusals, 1);
    assert!(stats.shard_hits >= 1);
    assert_eq!(stats.misses, 2);
}

/// A fleet fronted by a real TCP worker serves the same bytes the local
/// pool would, end to end through the service (cache, store, dispatch).
#[test]
fn fleet_with_remote_worker_matches_local_fleet() {
    let dir = TempDir::new("remote");
    let mut server = WorkerServer::bind("127.0.0.1:0", Telemetry::disabled()).unwrap();

    let remote_fleet = FleetService::start(FleetConfig {
        local_workers: 0,
        remote_workers: vec![server.addr().to_string()],
        store: Some(dir.path().join("remote")),
        ..FleetConfig::default()
    })
    .unwrap();
    let local_fleet = FleetService::start(FleetConfig {
        store: Some(dir.path().join("local")),
        ..FleetConfig::default()
    })
    .unwrap();

    for request in zoo_requests() {
        let via_remote = remote_fleet.submit("t", request.clone()).unwrap();
        let via_local = local_fleet.submit("t", request.clone()).unwrap();
        let fp = via_remote.fingerprint();
        assert_eq!(fp, via_local.fingerprint());
        let remote_plan = via_remote.wait().expect("remote fleet plan");
        let local_plan = via_local.wait().expect("local fleet plan");
        assert_eq!(
            canonical_artifact(&remote_plan, fp),
            canonical_artifact(&local_plan, fp),
            "fleet-level remote/local divergence for `{}`",
            request.model.name()
        );
        // Both stores persisted the same canonical bytes.
        let remote_stored = remote_fleet.store().unwrap().get(&fp).unwrap().0;
        let local_stored = local_fleet.store().unwrap().get(&fp).unwrap().0;
        assert_eq!(remote_stored, local_stored);
    }
    assert!(server.served() >= zoo_requests().len() as u64);
    server.shutdown();
}
