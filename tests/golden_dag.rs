//! Golden tests pinning the arbitrary-DAG planning ladder's outputs for
//! the two non-hand-authored zoo models (`zoo::gnn_pipe`, `zoo::gpt2`) at
//! 8–32 GPUs (ISSUE: "Plan arbitrary DAGs").
//!
//! Each line pins the rung of the fallback ladder taken ([`PlanPath`]),
//! the simulated makespan, and the *plan fingerprint* — which absorbs the
//! plan path whenever it is not exact-SP, so a ladder regression (e.g.
//! recognition silently degrading to SP-ization) flips the fingerprint and
//! fails this table even if the strategy shape happens to survive. The
//! planner and simulator are deterministic, so the values are exact; a
//! diff means a behaviour change — re-pin only after reviewing it.
//!
//! The second table pins the Figure-6-style comparison on `gpt2`: graph
//! pipeline parallelism must never lose to the sequential baseline on a
//! residual transformer, and the rendered table is pinned byte-for-byte.

use graphpipe::prelude::*;
use graphpipe::serve::fingerprint::plan_fingerprint;
use std::fmt::Write as _;

type Cell = (&'static str, SpModel, Vec<(usize, u64)>);

/// The two DAG-ladder models at the paper's small/medium/large device
/// counts. `gnn_pipe` (neighbor-mixing heads + jumping-knowledge skips)
/// takes the SP-ization rung; `gpt2` (residual skips along a totally
/// ordered chain) is recognized exactly.
fn cells() -> Vec<Cell> {
    vec![
        (
            "gnn-pipe",
            zoo::gnn_pipe(&zoo::GnnPipeConfig::default()),
            vec![(8, 128), (16, 256), (32, 512)],
        ),
        (
            "gpt2",
            zoo::gpt2(&zoo::Gpt2Config::default()),
            vec![(8, 64), (16, 128), (32, 256)],
        ),
    ]
}

fn actual_table() -> String {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    let mut out = String::new();
    for (name, model, points) in cells() {
        for (devices, mini_batch) in points {
            let cluster = Cluster::summit_like(devices);
            let plan = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let report = graphpipe::simulate_plan(&model, &cluster, &plan)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let verdict = verify_strategy(&model, &cluster, &plan);
            assert!(
                verdict.is_clean(),
                "{name}@{devices}: verifier rejected the plan: {verdict}"
            );
            let _ = writeln!(
                out,
                "{name} gpus={devices} b={mini_batch} path={} makespan={:.9e} fp={} \
                 stages={} depth={} micro={}",
                plan.path,
                report.iteration_time,
                plan_fingerprint(&plan),
                plan.stage_graph.len(),
                plan.pipeline_depth(),
                plan.max_micro_batch(),
            );
        }
    }
    out
}

const EXPECTED: &str = "\
gnn-pipe gpus=8 b=128 path=sp-ized (distortion 98304 bytes) makespan=3.312464354e-3 fp=cc7d467000ab5bea1a54a26cd8afebeb stages=8 depth=8 micro=128
gnn-pipe gpus=16 b=256 path=sp-ized (distortion 98304 bytes) makespan=5.132484007e-3 fp=9a1ca09cd476034eaf95471631231bd9 stages=15 depth=14 micro=256
gnn-pipe gpus=32 b=512 path=sp-ized (distortion 98304 bytes) makespan=6.218668101e-3 fp=8cbca2578e86317e811c7c1d9f1bf54c stages=32 depth=16 micro=512
gpt2 gpus=8 b=64 path=exact-sp makespan=9.114274315e-3 fp=a5872ed6a3c5a94741c1b31ad124b9b6 stages=2 depth=2 micro=16
gpt2 gpus=16 b=128 path=exact-sp makespan=2.923743584e-2 fp=c55b200b61ddfa22b0c09f88e017c822 stages=6 depth=6 micro=32
gpt2 gpus=32 b=256 path=exact-sp makespan=9.865370851e-3 fp=ee390cec12fb78b75c4d2637058c0f8f stages=1 depth=1 micro=8
";

#[test]
fn dag_ladder_outputs_match_golden_table() {
    let actual = actual_table();
    assert_eq!(
        actual.trim(),
        EXPECTED.trim(),
        "\n--- actual table (paste over EXPECTED if the change is intended) ---\n{actual}"
    );
}

const EXPECTED_GPT2_COMPARISON: &str = "\
| planner | samples/s | depth | micro-batch | vs GraphPipe |
| --- | --- | --- | --- | --- |
| GraphPipe | 139589 | 2 | 16 | 1.00x |
| PipeDream | 139589 | 2 | 16 | 1.00x |
";

/// Figure 6 on the residual transformer: GPP ≥ SPP, pinned byte-for-byte.
#[test]
fn gpt2_comparison_table_shows_gpp_at_least_spp() {
    let session = Session::builder()
        .model(zoo::gpt2(&zoo::Gpt2Config::tiny()))
        .cluster(Cluster::summit_like(8))
        .mini_batch(64)
        .options(PlanOptions::default().with_max_micro_batches(32))
        .build()
        .unwrap();
    let table = session.compare(&[PlannerKind::GraphPipe, PlannerKind::PipeDream]);
    assert!(
        table
            .speedup(PlannerKind::GraphPipe, PlannerKind::PipeDream)
            .unwrap()
            >= 1.0,
        "graph pipeline parallelism lost to the sequential baseline:\n{table}"
    );
    let actual = table.render();
    assert_eq!(
        actual.trim(),
        EXPECTED_GPT2_COMPARISON.trim(),
        "\n--- actual table (paste over EXPECTED_GPT2_COMPARISON if intended) ---\n{actual}"
    );
}

/// The acceptance path for arbitrary DAGs, end to end: a raw non-SP graph
/// enters through `Session::builder().model_dag(..)`, plans, simulates,
/// verifies, round-trips the artifact codec with its plan path intact, and
/// serves identically to local planning.
#[test]
fn non_sp_dags_plan_end_to_end_through_the_session() {
    for (graph, want_sp_ized) in [
        (zoo::gnn_pipe_graph(&zoo::GnnPipeConfig::tiny()), true),
        (zoo::gpt2_graph(&zoo::Gpt2Config::tiny()), false),
    ] {
        let session = Session::builder()
            .model_dag(graph)
            .cluster(Cluster::summit_like(4))
            .mini_batch(32)
            .options(PlanOptions::default().with_max_micro_batches(16))
            .build()
            .unwrap();
        let strategy = session.plan(PlannerKind::GraphPipe).unwrap();
        match strategy.plan_path() {
            PlanPath::SpIzed { distortion } => {
                assert!(want_sp_ized && distortion > 0);
            }
            PlanPath::ExactSp => assert!(!want_sp_ized),
            PlanPath::Clustered { .. } => panic!("tiny models never exceed the budget"),
        }
        let report = strategy.simulate().unwrap();
        assert!(report.throughput > 0.0);

        // Artifact round-trip preserves the plan path (and everything else).
        let restored = session
            .load_artifact(&strategy.artifact(), PlannerKind::GraphPipe)
            .unwrap();
        assert_eq!(restored.plan_path(), strategy.plan_path());
        assert_eq!(restored.fingerprint(), strategy.fingerprint());

        // Serving reproduces local planning, fingerprints included.
        let service = session.serve(1, 4);
        let served = service.plan(PlannerKind::GraphPipe).unwrap();
        assert_eq!(served.fingerprint(), strategy.fingerprint());
        assert_eq!(served.plan_path(), strategy.plan_path());
        let strip = |p: &Plan| {
            let mut p = p.clone();
            p.stats.zero_walls();
            p
        };
        assert_eq!(strip(served.plan()), strip(strategy.plan()));
    }
}

/// `model_dag` and `model` are mutually exclusive, and invalid graphs are
/// rejected at `build()` with the session's own error type.
#[test]
fn model_dag_builder_rejects_misuse() {
    let err = Session::builder()
        .model(zoo::mlp_chain(2, 16))
        .model_dag(zoo::gpt2_graph(&zoo::Gpt2Config::tiny()))
        .cluster(Cluster::summit_like(2))
        .mini_batch(8)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("not both"), "{err}");
}
