//! Golden tests pinning the GraphPipe planner's outputs across the zoo at
//! 8–64 GPUs (the "baseline parity" + "planner hot path" ROADMAP items).
//!
//! Each line pins the simulated makespan and the planner's search-stat
//! counters for one (model, devices) cell. The values are exact: the
//! planner and simulator are deterministic (see
//! `reports_are_byte_deterministic` in `gp-sim`), so any diff here is a
//! behaviour change — either an intentional planner improvement (re-pin
//! the table after reviewing it) or a regression. The arena-memo refactor
//! of `gp-partition` was validated against this table: every makespan,
//! stage graph, `evals`, `iters` and `configs` value was unchanged; only
//! `states` was re-pinned when `dp_states` switched from summing memo
//! sizes across binary-search probes to reporting the per-run peak.
//!
//! The 64-GPU rows cover the two models the scale work targets
//! (`CandleUnoConfig::full()`, `zoo::moe`); the remaining 64-GPU cells run
//! in `planner_profile` (release) instead, where their ~250M debug-mode DP
//! evaluations don't tax `cargo test`.
//!
//! Wall-clock search time is *not* pinned (it is machine-dependent); the
//! deterministic counters `dp_evals`/`dp_states`/`memo_hits`/
//! `binary_iters`/`configs_tried` stand in for it, mirroring Table 1's
//! cost accounting.

use graphpipe::prelude::*;
use std::fmt::Write as _;

/// Mini-batch per model and device count: the Appendix A.2 operating
/// points for the paper models (extrapolated by doubling past 32 GPUs),
/// and matching-scale choices for the two ROADMAP additions (full
/// CANDLE-Uno, MoE).
type Cell = (&'static str, SpModel, Vec<(usize, u64)>);

fn cells() -> Vec<Cell> {
    vec![
        (
            "mmt",
            zoo::mmt(&zoo::MmtConfig::default()),
            vec![(8, 128), (16, 256), (32, 512)],
        ),
        (
            "dlrm",
            zoo::dlrm(&zoo::DlrmConfig::default()),
            vec![(8, 512), (16, 1024), (32, 2048)],
        ),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
            vec![(8, 8192), (16, 16384), (32, 32768)],
        ),
        (
            "candle-uno-full",
            zoo::candle_uno(&zoo::CandleUnoConfig::full()),
            vec![(8, 8192), (16, 16384), (32, 32768), (64, 65536)],
        ),
        (
            "moe",
            zoo::moe(&zoo::MoeConfig::default()),
            vec![(8, 256), (16, 512), (32, 1024), (64, 2048)],
        ),
    ]
}

fn actual_table() -> String {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    let mut out = String::new();
    for (name, model, points) in cells() {
        for (devices, mini_batch) in points {
            let cluster = Cluster::summit_like(devices);
            let plan = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let report = graphpipe::simulate_plan(&model, &cluster, &plan)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let _ = writeln!(
                out,
                "{name} gpus={devices} b={mini_batch} makespan={:.9e} stages={} depth={} \
                 micro={} evals={} states={} hits={} iters={} configs={}",
                report.iteration_time,
                plan.stage_graph.len(),
                plan.pipeline_depth(),
                plan.max_micro_batch(),
                plan.stats.dp_evals,
                plan.stats.dp_states,
                plan.stats.memo_hits,
                plan.stats.binary_iters,
                plan.stats.configs_tried,
            );
        }
    }
    out
}

const EXPECTED: &str = "\
mmt gpus=8 b=128 makespan=1.400232949e0 stages=4 depth=2 micro=64 evals=62122 states=436 hits=27108 iters=8 configs=34
mmt gpus=16 b=256 makespan=1.401588110e0 stages=4 depth=2 micro=64 evals=926293 states=1591 hits=457366 iters=8 configs=46
mmt gpus=32 b=512 makespan=2.322646468e0 stages=9 depth=3 micro=128 evals=6458195 states=4055 hits=3350199 iters=8 configs=53
dlrm gpus=8 b=512 makespan=4.009272153e-2 stages=6 depth=2 micro=256 evals=37292 states=731 hits=31863 iters=7 configs=29
dlrm gpus=16 b=1024 makespan=3.913955829e-2 stages=15 depth=2 micro=1024 evals=487946 states=2412 hits=447792 iters=7 configs=36
dlrm gpus=32 b=2048 makespan=3.265472466e-2 stages=16 depth=3 micro=256 evals=9383277 states=8804 hits=8262065 iters=9 configs=64
candle-uno gpus=8 b=8192 makespan=2.140994895e-1 stages=8 depth=2 micro=4096 evals=26118 states=405 hits=12738 iters=8 configs=63
candle-uno gpus=16 b=16384 makespan=2.708418455e-1 stages=8 depth=2 micro=2048 evals=268150 states=1049 hits=144431 iters=8 configs=64
candle-uno gpus=32 b=32768 makespan=2.495837234e-1 stages=8 depth=2 micro=1024 evals=1798541 states=2380 hits=1154333 iters=7 configs=56
candle-uno-full gpus=8 b=8192 makespan=6.886048953e-1 stages=8 depth=2 micro=4096 evals=96881 states=1411 hits=125118 iters=8 configs=63
candle-uno-full gpus=16 b=16384 makespan=7.418773963e-1 stages=8 depth=2 micro=2048 evals=994472 states=4293 hits=1195554 iters=8 configs=64
candle-uno-full gpus=32 b=32768 makespan=8.682303883e-1 stages=22 depth=2 micro=512 evals=6023817 states=9939 hits=7243447 iters=7 configs=56
candle-uno-full gpus=64 b=65536 makespan=1.068724394e0 stages=22 depth=2 micro=1024 evals=96236767 states=35699 hits=114933552 iters=8 configs=64
moe gpus=8 b=256 makespan=7.019171528e-3 stages=6 depth=3 micro=256 evals=46349 states=534 hits=28838 iters=9 configs=37
moe gpus=16 b=512 makespan=7.006966486e-3 stages=10 depth=3 micro=512 evals=554730 states=1843 hits=382388 iters=9 configs=46
moe gpus=32 b=1024 makespan=1.229349628e-2 stages=10 depth=3 micro=128 evals=2853020 states=4687 hits=2156693 iters=9 configs=55
moe gpus=64 b=2048 makespan=1.417729438e-2 stages=11 depth=4 micro=512 evals=34297787 states=13071 hits=28010116 iters=10 configs=79
";

#[test]
fn planner_outputs_match_golden_table() {
    let actual = actual_table();
    assert_eq!(
        actual.trim(),
        EXPECTED.trim(),
        "\n--- actual table (paste over EXPECTED if the change is intended) ---\n{actual}"
    );
}

/// The parallel planner must reproduce the golden table bit-for-bit —
/// same strategies *and* same deterministic search counters. Restricted
/// to the 8/16-GPU rows to keep debug-mode test time in check (the
/// speculative search re-runs discarded probes' worth of work).
#[test]
fn parallel_planner_matches_golden_table_at_small_scale() {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    for (name, model, points) in cells() {
        for (devices, mini_batch) in points.into_iter().filter(|&(d, _)| d <= 16) {
            let cluster = Cluster::summit_like(devices);
            let seq = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let par = ParallelPlanner::with_options(opts.clone(), 3)
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices} (parallel): {e}"));
            let strip = |mut p: Plan| {
                p.stats.zero_walls();
                p
            };
            assert_eq!(strip(seq), strip(par), "{name}@{devices}");
        }
    }
}

/// Telemetry is write-only: planning with tracing enabled must reproduce
/// the untraced plan exactly — stage graph, schedule, estimates, *and*
/// every deterministic search counter — and the encoded artifact bytes
/// must match once the (machine-noise) wall timings are zeroed. Restricted
/// to the 8-GPU rows to keep debug-mode test time in check.
#[test]
fn telemetry_does_not_perturb_the_planner() {
    use graphpipe::obs::Telemetry;
    use graphpipe::serve::artifact;

    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    for (name, model, points) in cells() {
        for (devices, mini_batch) in points.into_iter().filter(|&(d, _)| d == 8) {
            let cluster = Cluster::summit_like(devices);
            let quiet = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let loud = GraphPipePlanner::with_options(opts.clone())
                .with_telemetry(Telemetry::enabled())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices} (traced): {e}"));
            let strip = |mut p: Plan| {
                p.stats.zero_walls();
                p
            };
            let (quiet, loud) = (strip(quiet), strip(loud));
            assert_eq!(quiet, loud, "{name}@{devices}");
            assert_eq!(
                artifact::encode_plan(&quiet, None),
                artifact::encode_plan(&loud, None),
                "{name}@{devices}: artifact bytes diverged"
            );
        }
    }
}
