//! Golden tests pinning the GraphPipe planner's outputs across the zoo at
//! 8 and 16 GPUs (the first slice of the ROADMAP "baseline parity" item).
//!
//! Each line pins the simulated makespan and the planner's search-stat
//! counters for one (model, devices) cell. The values are exact: the
//! planner and simulator are deterministic (see
//! `reports_are_byte_deterministic` in `gp-sim`), so any diff here is a
//! behaviour change — either an intentional planner improvement (re-pin
//! the table after reviewing it) or a regression.
//!
//! Wall-clock search time is *not* pinned (it is machine-dependent); the
//! deterministic counters `dp_evals`/`dp_states`/`binary_iters`/
//! `configs_tried` stand in for it, mirroring Table 1's cost accounting.

use graphpipe::prelude::*;
use std::fmt::Write as _;

/// Mini-batch per model at 8 and 16 devices: the Appendix A.2 operating
/// points for the paper models, and matching-scale choices for the two
/// ROADMAP additions (full CANDLE-Uno, MoE).
fn cells() -> Vec<(&'static str, SpModel, [u64; 2])> {
    vec![
        ("mmt", zoo::mmt(&zoo::MmtConfig::default()), [128, 256]),
        ("dlrm", zoo::dlrm(&zoo::DlrmConfig::default()), [512, 1024]),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
            [8192, 16384],
        ),
        (
            "candle-uno-full",
            zoo::candle_uno(&zoo::CandleUnoConfig::full()),
            [8192, 16384],
        ),
        ("moe", zoo::moe(&zoo::MoeConfig::default()), [256, 512]),
    ]
}

fn actual_table() -> String {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    let mut out = String::new();
    for (name, model, mini_batches) in cells() {
        for (devices, mini_batch) in [8usize, 16].into_iter().zip(mini_batches) {
            let cluster = Cluster::summit_like(devices);
            let plan = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let report = graphpipe::simulate_plan(&model, &cluster, &plan)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let _ = writeln!(
                out,
                "{name} gpus={devices} b={mini_batch} makespan={:.9e} stages={} depth={} \
                 micro={} evals={} states={} iters={} configs={}",
                report.iteration_time,
                plan.stage_graph.len(),
                plan.pipeline_depth(),
                plan.max_micro_batch(),
                plan.stats.dp_evals,
                plan.stats.dp_states,
                plan.stats.binary_iters,
                plan.stats.configs_tried,
            );
        }
    }
    out
}

const EXPECTED: &str = "\
mmt gpus=8 b=128 makespan=1.400232949e0 stages=4 depth=2 micro=64 evals=62122 states=3395 iters=8 configs=34
mmt gpus=16 b=256 makespan=1.401588110e0 stages=4 depth=2 micro=64 evals=926293 states=16544 iters=8 configs=46
dlrm gpus=8 b=512 makespan=4.009272153e-2 stages=6 depth=2 micro=256 evals=37292 states=6950 iters=7 configs=29
dlrm gpus=16 b=1024 makespan=3.913955829e-2 stages=15 depth=2 micro=1024 evals=487946 states=35041 iters=7 configs=36
candle-uno gpus=8 b=8192 makespan=2.140994895e-1 stages=8 depth=2 micro=4096 evals=26118 states=5056 iters=8 configs=63
candle-uno gpus=16 b=16384 makespan=2.708418455e-1 stages=8 depth=2 micro=2048 evals=268150 states=21848 iters=8 configs=64
candle-uno-full gpus=8 b=8192 makespan=6.886048953e-1 stages=8 depth=2 micro=4096 evals=96881 states=14224 iters=8 configs=63
candle-uno-full gpus=16 b=16384 makespan=7.418773963e-1 stages=8 depth=2 micro=2048 evals=994472 states=68447 iters=8 configs=64
moe gpus=8 b=256 makespan=7.019171528e-3 stages=6 depth=3 micro=256 evals=46349 states=8173 iters=9 configs=37
moe gpus=16 b=512 makespan=7.006966486e-3 stages=10 depth=3 micro=512 evals=554730 states=36046 iters=9 configs=46
";

#[test]
fn planner_outputs_match_golden_table() {
    let actual = actual_table();
    assert_eq!(
        actual.trim(),
        EXPECTED.trim(),
        "\n--- actual table (paste over EXPECTED if the change is intended) ---\n{actual}"
    );
}
