//! Golden tests pinning the simulator's outputs across the zoo at 8/16
//! GPUs (the ROADMAP's "scale the simulator" item).
//!
//! Each line pins one (model, devices) cell: the simulated makespan, the
//! number of executed task spans, the worst per-device peak memory, the
//! warm-up length, and a bit-exact FNV digest of the *entire* report
//! ([`SimReport::fingerprint`] folds every scalar's IEEE-754 bit pattern
//! and every timeline span). The table was captured on the pre-arena
//! engine and replayed unchanged after the rebuild: matching fingerprints
//! prove the refactor produces byte-identical reports, not just close
//! ones.
//!
//! Any diff here is a simulator behaviour change — either an intentional
//! modeling change (re-pin after reviewing DESIGN.md's modeling contract)
//! or a regression.

use graphpipe::prelude::*;
use std::fmt::Write as _;

/// The evaluation zoo at its Appendix A.2 operating points (8/16 GPUs).
type Cell = (&'static str, SpModel, Vec<(usize, u64)>);

fn cells() -> Vec<Cell> {
    vec![
        (
            "mmt",
            zoo::mmt(&zoo::MmtConfig::default()),
            vec![(8, 128), (16, 256)],
        ),
        (
            "dlrm",
            zoo::dlrm(&zoo::DlrmConfig::default()),
            vec![(8, 512), (16, 1024)],
        ),
        (
            "candle-uno",
            zoo::candle_uno(&zoo::CandleUnoConfig::default()),
            vec![(8, 8192), (16, 16384)],
        ),
        (
            "candle-uno-full",
            zoo::candle_uno(&zoo::CandleUnoConfig::full()),
            vec![(8, 8192), (16, 16384)],
        ),
        (
            "moe",
            zoo::moe(&zoo::MoeConfig::default()),
            vec![(8, 256), (16, 512)],
        ),
    ]
}

fn actual_table() -> String {
    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    let mut out = String::new();
    for (name, model, points) in cells() {
        for (devices, mini_batch) in points {
            let cluster = Cluster::summit_like(devices);
            let plan = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let report = graphpipe::simulate_plan(&model, &cluster, &plan)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let _ = writeln!(
                out,
                "{name} gpus={devices} b={mini_batch} makespan={:.9e} spans={} peak={} \
                 warmup={:.9e} fp={:016x}",
                report.iteration_time,
                report.timeline.len(),
                report.max_peak_memory(),
                report.warmup_time,
                report.fingerprint(),
            );
        }
    }
    out
}

const EXPECTED: &str = "\
mmt gpus=8 b=128 makespan=1.400232949e0 spans=16 peak=9664856064 warmup=2.361618516e-1 fp=5ec123a3af11550d
mmt gpus=16 b=256 makespan=1.401588110e0 spans=32 peak=9664856064 warmup=2.361618516e-1 fp=ba73bc868cecb41e
dlrm gpus=8 b=512 makespan=4.009272153e-2 spans=24 peak=4370423808 warmup=7.985329568e-3 fp=9f30527bb18ca3c4
dlrm gpus=16 b=1024 makespan=3.913955829e-2 spans=30 peak=1470119936 warmup=1.035247936e-2 fp=ad81ed0b13f061e4
candle-uno gpus=8 b=8192 makespan=2.140994895e-1 spans=32 peak=2147745792 warmup=4.108862403e-2 fp=ef8e99f48197c047
candle-uno gpus=16 b=16384 makespan=2.708418455e-1 spans=128 peak=1342439424 warmup=2.059786092e-2 fp=69bcea3ca327f038
candle-uno-full gpus=8 b=8192 makespan=6.886048953e-1 spans=32 peak=6443237376 warmup=1.232458721e-1 fp=4e375e5d27006dca
candle-uno-full gpus=16 b=16384 makespan=7.418773963e-1 spans=128 peak=4027318272 warmup=6.177358275e-2 fp=b50fdbc0a841f809
moe gpus=8 b=256 makespan=7.019171528e-3 spans=12 peak=574947328 warmup=1.499306712e-3 fp=7800554adf288959
moe gpus=16 b=512 makespan=7.006966486e-3 spans=20 peak=306348032 warmup=1.630019008e-3 fp=a595ace77570c23c
";

#[test]
fn simulator_outputs_match_golden_table() {
    let actual = actual_table();
    assert_eq!(
        actual.trim(),
        EXPECTED.trim(),
        "\n--- actual table (paste over EXPECTED if the change is intended) ---\n{actual}"
    );
}

/// Telemetry is write-only: simulating with tracing enabled (sequential
/// and parallel engines) must produce the bit-exact report fingerprint of
/// the untraced run. Restricted to the 8-GPU rows to keep debug-mode test
/// time in check.
#[test]
fn telemetry_does_not_perturb_the_simulator() {
    use graphpipe::obs::Telemetry;
    use graphpipe::sim::simulate_traced;

    let opts = PlanOptions {
        max_micro_batches: 128,
        ..PlanOptions::default()
    };
    for (name, model, points) in cells() {
        for (devices, mini_batch) in points.into_iter().filter(|&(d, _)| d == 8) {
            let cluster = Cluster::summit_like(devices);
            let plan = GraphPipePlanner::with_options(opts.clone())
                .plan(&model, &cluster, mini_batch)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            let quiet = graphpipe::simulate_plan(&model, &cluster, &plan)
                .unwrap_or_else(|e| panic!("{name}@{devices}: {e}"));
            for parallelism in [1, 4] {
                let telemetry = Telemetry::enabled();
                let loud = simulate_traced(
                    model.graph(),
                    &cluster,
                    &plan.stage_graph,
                    &plan.schedule,
                    &SimOptions::default().with_parallelism(parallelism),
                    &telemetry,
                )
                .unwrap_or_else(|e| panic!("{name}@{devices} (traced): {e}"));
                assert_eq!(
                    quiet.fingerprint(),
                    loud.fingerprint(),
                    "{name}@{devices} parallelism={parallelism}"
                );
                assert!(
                    !telemetry.spans().is_empty(),
                    "{name}@{devices}: traced run recorded no spans"
                );
            }
        }
    }
}
