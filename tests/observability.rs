//! End-to-end telemetry: a full [`Session`] run (plan → simulate →
//! execute) with tracing enabled exports a valid Perfetto trace and a
//! summary tree at least four span levels deep — while every
//! deterministic output (plan, fingerprint, sim report, training losses)
//! stays byte-identical to the untraced run. The inertness half of this
//! contract is also pinned per-layer in `tests/golden_planner.rs` and
//! `tests/golden_sim.rs`.

use graphpipe::obs::{PerfettoSink, SummarySink, Telemetry};
use graphpipe::prelude::*;
use graphpipe::serve::json::Json;
use graphpipe::sim::report_into_perfetto;
use std::collections::HashMap;

fn session_with(telemetry: Telemetry) -> Session {
    Session::builder()
        .model(zoo::mmt(&zoo::MmtConfig::tiny()))
        .cluster(Cluster::summit_like(3).with_memory_capacity(1 << 30))
        .mini_batch(8)
        .telemetry(telemetry)
        .build()
        .unwrap()
}

/// Nesting depth of a span record (a root span has depth 1; parent id 0
/// means root).
fn depth_of(id: u64, parent_of: &HashMap<u64, u64>) -> usize {
    let mut depth = 1;
    let mut cur = id;
    while let Some(&p) = parent_of.get(&cur) {
        if p == 0 {
            break;
        }
        depth += 1;
        cur = p;
    }
    depth
}

#[test]
fn session_run_exports_valid_trace_with_deep_spans() {
    let telemetry = Telemetry::enabled();
    let session = session_with(telemetry.clone());
    let strategy = session.plan(PlannerKind::GraphPipe).unwrap();
    let report = strategy.simulate().unwrap();
    let run = strategy
        .execute(&TrainingConfig {
            steps: 2,
            ..TrainingConfig::default()
        })
        .unwrap();
    assert_eq!(run.losses.len(), 2);

    // The recorded span forest covers every layer and nests at least four
    // levels deep (session.plan → planner.search → search.bracket →
    // search.probe; session.execute → exec.step → exec.iteration →
    // exec.replica).
    let spans = telemetry.spans();
    let parent_of: HashMap<u64, u64> = spans.iter().map(|s| (s.id, s.parent)).collect();
    let max_depth = spans
        .iter()
        .map(|s| depth_of(s.id, &parent_of))
        .max()
        .unwrap_or(0);
    assert!(max_depth >= 4, "span tree only {max_depth} levels deep");
    for expected in [
        "session.plan",
        "planner.search",
        "search.bracket",
        "search.probe",
        "session.simulate",
        "sim.relax",
        "session.execute",
        "exec.step",
        "exec.replica",
    ] {
        assert!(
            spans.iter().any(|s| s.name == expected),
            "no `{expected}` span recorded"
        );
    }

    // The summary tree renders the same hierarchy.
    let summary = telemetry.export(&mut SummarySink::new());
    for expected in ["session.plan", "planner.search", "exec.step"] {
        assert!(summary.contains(expected), "{summary}");
    }

    // One Perfetto file holds the live spans (pid 1) next to the
    // simulated schedule (pid 2), and its B/E events keep stack
    // discipline with non-negative timestamps and durations — the same
    // checks `cargo xtask trace-check` applies.
    let mut sink = PerfettoSink::new();
    report_into_perfetto(&mut sink, &report);
    let trace = telemetry.export(&mut sink);
    let doc = Json::parse(&trace).expect("trace is well-formed JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut open: HashMap<(u64, u64), Vec<f64>> = HashMap::new();
    let mut saw_slice = false;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let lane = (
            ev.get("pid").and_then(Json::as_u64).unwrap_or(0),
            ev.get("tid").and_then(Json::as_u64).unwrap_or(0),
        );
        let ts = || ev.get("ts").and_then(Json::as_f64).expect("numeric ts");
        match ph {
            "B" => open.entry(lane).or_default().push(ts()),
            "E" => {
                let begin = open
                    .get_mut(&lane)
                    .and_then(Vec::pop)
                    .expect("E closes an open B");
                assert!(ts() >= begin, "negative span duration");
            }
            "X" => {
                assert!(ts() >= 0.0);
                assert!(ev.get("dur").and_then(Json::as_f64).expect("dur") >= 0.0);
                saw_slice = true;
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(open.values().all(Vec::is_empty), "unclosed B events");
    assert!(saw_slice, "no simulated task slices");
    assert!(trace.contains("simulated cluster"));

    // Serving through the same session records latency histograms.
    let service = session.serve(1, 4);
    service.plan(PlannerKind::GraphPipe).unwrap();
    service.plan(PlannerKind::GraphPipe).unwrap();
    let stats = service.shutdown();
    assert_eq!(stats.miss_latency.count, 1, "{stats}");
    assert_eq!(stats.hit_latency.count, 1, "{stats}");
    assert!(stats.render().contains("hit latency"), "{stats}");
}

/// The committed `BENCH_serve.json` (written by `serve_load --out`) must
/// stay parseable and shape-valid: every latency histogram carries
/// monotone percentiles (p50 ≤ p90 ≤ p99 ≤ max). Values are wall-clock
/// and machine-dependent, so only the shape is pinned.
#[test]
fn bench_serve_json_parses_with_monotone_percentiles() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serve.json");
    let text = std::fs::read_to_string(path).expect("BENCH_serve.json is committed");
    let doc = Json::parse(&text).expect("BENCH_serve.json is well-formed JSON");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("serve_load"));
    for key in ["shard_hit_rate", "shed_rate"] {
        let rate = doc
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{key} is a number"));
        assert!((0.0..=1.0).contains(&rate), "{key} out of range: {rate}");
    }
    let latency = doc.get("latency").expect("latency object");
    for key in ["queue_wait", "worker_rtt"] {
        let h = latency.get(key).unwrap_or_else(|| panic!("latency.{key}"));
        let field = |name: &str| {
            h.get(name)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("latency.{key}.{name}"))
        };
        let (p50, p90, p99, max) = (
            field("p50_ns"),
            field("p90_ns"),
            field("p99_ns"),
            field("max_ns"),
        );
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= max,
            "latency.{key} percentiles not monotone: {p50} {p90} {p99} {max}"
        );
        if field("count") > 0 {
            assert!(max > 0, "latency.{key} recorded but max is zero");
        }
    }
}

#[test]
fn telemetry_is_inert_across_the_session() {
    let quiet = session_with(Telemetry::disabled());
    let loud = session_with(Telemetry::enabled());

    let (a, b) = (
        quiet.plan(PlannerKind::GraphPipe).unwrap(),
        loud.plan(PlannerKind::GraphPipe).unwrap(),
    );
    assert_eq!(a.fingerprint(), b.fingerprint());
    // Wall timings are machine noise either way; everything else in the
    // plan must match exactly.
    let strip = |s: &PlannedStrategy| {
        let mut p = (**s.plan()).clone();
        p.stats.zero_walls();
        p
    };
    assert_eq!(strip(&a), strip(&b));

    let (ra, rb) = (a.simulate().unwrap(), b.simulate().unwrap());
    assert_eq!(ra.fingerprint(), rb.fingerprint());

    let config = TrainingConfig {
        steps: 3,
        ..TrainingConfig::default()
    };
    let (ta, tb) = (a.execute(&config).unwrap(), b.execute(&config).unwrap());
    assert_eq!(ta, tb, "telemetry perturbed training");
}
