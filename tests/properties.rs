//! Property-based tests over randomly generated series-parallel models:
//! whatever the topology, planned strategies must satisfy the paper's
//! validity conditions, the scheduler's in-flight accounting must bound the
//! simulator's observations, and `ComputeInFlight` must respect its
//! structural invariants.

use graphpipe::ir::{GraphBuilder, OpKind, Shape, SpBlock, SpModel};
use graphpipe::prelude::*;
use graphpipe::sched::compute_in_flight;
use proptest::prelude::*;

/// Generates a random multi-branch MLP: `branches` parallel chains of
/// `layers` dense layers with hidden width `width`, merged by a concat and
/// a small head.
fn random_model(branches: usize, layers: usize, width: usize) -> SpModel {
    let mut b = GraphBuilder::new();
    let mut branch_blocks = Vec::new();
    let mut outs = Vec::new();
    for br in 0..branches {
        let mut blocks = Vec::new();
        let input = b.input(format!("in{br}"), Shape::vector(width));
        blocks.push(SpBlock::Leaf(input));
        let mut cur = input;
        for l in 0..layers {
            let fc = b.linear(format!("b{br}l{l}"), cur, width, true).unwrap();
            blocks.push(SpBlock::Leaf(fc));
            cur = fc;
        }
        outs.push(cur);
        branch_blocks.push(SpBlock::Chain(blocks));
    }
    let cat = b.op("cat", OpKind::Concat, &outs).unwrap();
    let head = b.linear("head", cat, 1, true).unwrap();
    let loss = b.loss("loss", &[head]);
    let root = SpBlock::Chain(vec![
        SpBlock::Branches(branch_blocks),
        SpBlock::Leaf(cat),
        SpBlock::Leaf(head),
        SpBlock::Leaf(loss),
    ]);
    SpModel::new("random", b.finish().unwrap(), root).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any planned strategy on any random SP model is valid (C1-C4) and
    /// simulates without deadlock; the simulator's peak memory never
    /// exceeds the planner's bound.
    #[test]
    fn planned_strategies_are_valid(
        branches in 1usize..5,
        layers in 1usize..5,
        width in prop::sample::select(vec![64usize, 128, 256]),
        devices in 2usize..7,
        log_b in 2u32..6,
    ) {
        let model = random_model(branches, layers, width);
        let cluster = Cluster::summit_like(devices);
        let mini_batch = 1u64 << log_b;
        let plan = GraphPipePlanner::new()
            .plan(&model, &cluster, mini_batch)
            .expect("tiny models always fit");
        plan.schedule.validate_c4(&plan.stage_graph).unwrap();
        let used: usize = plan.stage_graph.stages().map(|s| s.dp_degree()).sum();
        prop_assert_eq!(used, devices);
        // Every op covered exactly once (C1) is enforced by construction;
        // convexity too. The schedule must execute.
        let report = graphpipe::simulate_plan(&model, &cluster, &plan).unwrap();
        prop_assert!(report.throughput > 0.0);
        prop_assert!(report.max_peak_memory() <= plan.peak_memory_bytes);
        // The scheduler's in-flight table matches a recomputation.
        let table = graphpipe::sched::assign_in_flight(&plan.stage_graph);
        for s in plan.stage_graph.stages() {
            prop_assert_eq!(plan.in_flight.samples(s.id), table.samples(s.id));
        }
    }

    /// The sequential baseline is never structurally deeper than it is long,
    /// and GraphPipe is never deeper than the sequential baseline.
    #[test]
    fn gpp_depth_never_exceeds_spp_depth(
        branches in 2usize..5,
        layers in 2usize..5,
        devices in 2usize..7,
    ) {
        let model = random_model(branches, layers, 128);
        let cluster = Cluster::summit_like(devices);
        let opts = PlanOptions::default().with_forced_micro_batch(4);
        let gp = graphpipe::planner(graphpipe::PlannerKind::GraphPipe, opts.clone())
            .plan(&model, &cluster, 16).unwrap();
        let pd = graphpipe::planner(graphpipe::PlannerKind::PipeDream, opts)
            .plan(&model, &cluster, 16).unwrap();
        prop_assert_eq!(pd.pipeline_depth(), pd.stage_graph.len());
        prop_assert!(gp.pipeline_depth() <= pd.pipeline_depth().max(gp.stage_graph.len()));
    }

    /// ComputeInFlight invariants: the upstream requirement strictly
    /// exceeds the downstream one, is monotone in `i_y`, and reduces to the
    /// classic 1F1B increment on uniform chains.
    #[test]
    fn compute_in_flight_invariants(
        k_x in 1u64..5,
        b_x_log in 0u32..5,
        k_y in 1u64..5,
        b_y_log in 0u32..5,
        i_mult in 1u64..9,
    ) {
        let b_x = 1u64 << b_x_log;
        let b_y = 1u64 << b_y_log;
        let i_y = i_mult * b_y;
        let i = compute_in_flight(k_x, b_x, k_y, b_y, i_y);
        prop_assert!(i > i_y, "upstream must hold more than downstream");
        // Monotone in i_y.
        let i2 = compute_in_flight(k_x, b_x, k_y, b_y, i_y + b_y);
        prop_assert!(i2 >= i);
        // Uniform 1F1B chain: exactly one extra micro-batch.
        if k_x == 1 && k_y == 1 && b_x == b_y {
            prop_assert_eq!(compute_in_flight(1, b_x, 1, b_x, i_y), i_y + b_x);
        }
    }

    /// Plan artifacts are lossless: for any random SP model and cluster,
    /// `decode(encode(plan)) == plan` exactly, with the fingerprint carried
    /// through the header (the gp-serve codec guarantee).
    #[test]
    fn plan_artifacts_round_trip(
        branches in 1usize..5,
        layers in 1usize..5,
        width in prop::sample::select(vec![64usize, 128, 256]),
        devices in 2usize..7,
        log_b in 2u32..6,
    ) {
        use graphpipe::serve::{artifact, fingerprint::request_fingerprint};
        let model = random_model(branches, layers, width);
        let cluster = Cluster::summit_like(devices);
        let mini_batch = 1u64 << log_b;
        let plan = GraphPipePlanner::new()
            .plan(&model, &cluster, mini_batch)
            .expect("tiny models always fit");
        let fp = request_fingerprint(&model, &cluster, mini_batch, &PlanOptions::default(), 0);
        let text = artifact::encode_plan(&plan, Some(fp));
        let (decoded, decoded_fp) = artifact::decode_plan(&text, model.graph(), &cluster)
            .expect("own artifacts decode");
        prop_assert_eq!(decoded_fp, Some(fp));
        // Re-encoding the decoded plan is byte-identical.
        prop_assert_eq!(artifact::encode_plan(&decoded, Some(fp)), text);
        // Phase walls are measurement, not plan data: never encoded, so
        // compare with walls zeroed on both sides.
        let (mut decoded, mut fresh) = (decoded, plan);
        decoded.stats.zero_walls();
        fresh.stats.zero_walls();
        prop_assert_eq!(&decoded, &fresh, "artifact was lossy: {}", text);
    }

    /// The speculative parallel planner produces *exactly* the sequential
    /// planner's plan — same stage graph, schedule, estimates, and
    /// deterministic search counters — for any random SP model, GPU
    /// count, mini-batch, and thread count. Only `stats.wall` (machine
    /// time) may differ.
    #[test]
    fn parallel_planner_equals_sequential(
        branches in 1usize..5,
        layers in 1usize..5,
        width in prop::sample::select(vec![64usize, 128, 256]),
        devices in 2usize..7,
        log_b in 2u32..6,
        threads in 2usize..6,
    ) {
        let model = random_model(branches, layers, width);
        let cluster = Cluster::summit_like(devices);
        let mini_batch = 1u64 << log_b;
        let strip = |mut p: Plan| { p.stats.zero_walls(); p };
        let seq = GraphPipePlanner::new()
            .plan(&model, &cluster, mini_batch)
            .expect("tiny models always fit");
        let par = ParallelPlanner::new(threads)
            .plan(&model, &cluster, mini_batch)
            .expect("tiny models always fit");
        prop_assert_eq!(strip(seq), strip(par));
    }

    /// Schedules generated for any warm-up/k combination satisfy C4 and
    /// peak exactly at the requested warm-up length.
    #[test]
    fn kfkb_schedules_are_well_formed(
        m_log in 0u32..6,
        warmup in 1u64..9,
        k in 1u64..4,
    ) {
        let m = 1u64 << m_log;
        let s = graphpipe::sched::StageSchedule::kfkb(
            graphpipe::sched::StageId(0), m, warmup, k,
        );
        s.validate_c4(m).unwrap();
        prop_assert_eq!(
            s.peak_in_flight_micro_batches(),
            warmup.max(k).min(m)
        );
    }
}
