//! Integration tests for the typed `Session` entry point: fingerprint
//! parity with the serve layer, artifact round-trips, the unified error
//! type, and the pinned equivalence between `Session::compare` and the
//! hand-wired per-planner evaluation it replaced.

use graphpipe::prelude::*;
use graphpipe::serve::{artifact, PlanRequest, ServeError};
use std::sync::Arc;

fn mmt_session(opts: PlanOptions) -> Session {
    Session::builder()
        .model(zoo::mmt(&zoo::MmtConfig::two_branch()))
        .cluster(Cluster::summit_like(4))
        .mini_batch(64)
        .options(opts)
        .build()
        .expect("well-formed session")
}

/// A `Session`-built plan round-trips the serve artifact codec and
/// fingerprints identically to a directly-constructed `PlanRequest`.
#[test]
fn session_plan_round_trips_artifact_and_matches_request_fingerprint() {
    let opts = PlanOptions::default().with_max_micro_batches(16);
    let session = mmt_session(opts.clone());
    let strategy = session.plan(PlannerKind::GraphPipe).unwrap();

    // Fingerprint parity with a hand-built serve request for the same
    // problem: Session adds nothing to the cache key.
    let direct = PlanRequest::new(
        Arc::new(zoo::mmt(&zoo::MmtConfig::two_branch())),
        Cluster::summit_like(4),
        64,
    )
    .with_options(opts)
    .with_planner(PlannerKind::GraphPipe.serve_planner());
    assert_eq!(strategy.fingerprint(), direct.fingerprint());
    assert_eq!(
        strategy.fingerprint(),
        session.request(PlannerKind::GraphPipe).fingerprint()
    );

    // Artifact round-trip through the session: lossless, fingerprint
    // kept. Per-phase wall timings are measurement, not plan data — the
    // codec doesn't carry them — so they are zeroed before comparing.
    let strip = |p: &Plan| {
        let mut p = p.clone();
        p.stats.zero_walls();
        p
    };
    let text = strategy.artifact();
    let restored = session
        .load_artifact(&text, PlannerKind::GraphPipe)
        .unwrap();
    assert_eq!(strip(restored.plan()), strip(strategy.plan()));
    assert_eq!(restored.fingerprint(), strategy.fingerprint());

    // And through the raw codec: same plan, same recorded fingerprint.
    let (decoded, recorded) =
        artifact::decode_plan(&text, session.model().graph(), session.cluster()).unwrap();
    assert_eq!(strip(&decoded), strip(strategy.plan()));
    assert_eq!(recorded, Some(strategy.fingerprint()));
}

/// Local planning and the serve path produce the same strategy under the
/// same fingerprint, and repeats are cache hits.
#[test]
fn served_plans_match_local_plans_and_hit_the_cache() {
    let session = mmt_session(PlanOptions::default());
    let service = session.serve(2, 8);

    let served = service.plan(PlannerKind::GraphPipe).unwrap();
    let local = session.plan(PlannerKind::GraphPipe).unwrap();
    assert_eq!(served.fingerprint(), local.fingerprint());
    // Identical strategies modulo the machine-dependent search wall-clock.
    let strip = |p: &Plan| {
        let mut p = p.clone();
        p.stats.zero_walls();
        p
    };
    assert_eq!(strip(served.plan()), strip(local.plan()));

    let again = service.plan(PlannerKind::GraphPipe).unwrap();
    assert_eq!(again.fingerprint(), served.fingerprint());
    let stats = service.shutdown();
    assert_eq!(stats.planner_runs, 1, "{stats}");
    assert_eq!(stats.hits, 1, "{stats}");
}

/// An evaluate-derived (sweep-best) strategy is fingerprinted by the
/// winning forced-micro-batch request, and handing that exact request to a
/// `PlanService` reproduces the same plan — fingerprint equality implies
/// plan identity across the local, served, and artifact paths.
#[test]
fn evaluate_fingerprint_keys_the_winning_request_and_reproduces_via_serve() {
    let opts = PlanOptions::default().with_max_micro_batches(16);
    let session = mmt_session(opts.clone());
    let res = session.evaluate(PlannerKind::GraphPipe).unwrap();

    // The sweep winner is keyed by its forced request, not the unforced
    // session request (which keys the single-shot `Session::plan` search).
    let winning_b = res.plan.max_micro_batch();
    let forced = session.request_with(
        PlannerKind::GraphPipe,
        opts.clone().with_forced_micro_batch(winning_b),
    );
    assert_eq!(res.plan.fingerprint(), forced.fingerprint());
    assert_ne!(
        res.plan.fingerprint(),
        session.request(PlannerKind::GraphPipe).fingerprint()
    );

    // A plan service given the winning request serves the identical plan
    // under the identical fingerprint.
    let service = session.serve(1, 4);
    let ticket = service.service().submit(forced);
    assert_eq!(ticket.fingerprint(), res.plan.fingerprint());
    let served = ticket.wait().unwrap();
    let strip = |p: &Plan| {
        let mut p = p.clone();
        p.stats.zero_walls();
        p
    };
    assert_eq!(strip(&served), strip(res.plan.plan()));

    // The sweep winner's artifact round-trips through the same session,
    // keeping the recorded (forced-request) fingerprint (walls zeroed:
    // the codec doesn't carry per-phase timings).
    let restored = session
        .load_artifact(&res.plan.artifact(), PlannerKind::GraphPipe)
        .unwrap();
    assert_eq!(strip(restored.plan()), strip(res.plan.plan()));
    assert_eq!(restored.fingerprint(), res.plan.fingerprint());
}

/// Pinned: `Session::compare` reproduces the hand-wired per-planner
/// evaluation (the pre-Session harness logic) exactly on `zoo::mmt`.
#[test]
fn compare_matches_hand_wired_per_planner_evaluation_on_mmt() {
    let opts = PlanOptions::default().with_max_micro_batches(16);
    let model = zoo::mmt(&zoo::MmtConfig::two_branch());
    let cluster = Cluster::summit_like(4);
    let mini_batch = 64;

    let session = mmt_session(opts.clone());
    let table = session.compare(&[
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ]);

    // Hand wiring, exactly as the bench harness did it before `Session`:
    // the A.2 micro-batch sweep for GraphPipe/PipeDream, a single run at
    // 8-op unit granularity for Piper.
    for kind in [PlannerKind::GraphPipe, PlannerKind::PipeDream] {
        let res = graphpipe::evaluate(&model, &cluster, mini_batch, kind, &opts).unwrap();
        let row = table.row(kind).unwrap();
        assert_eq!(row.throughput, Some(res.report.throughput), "{kind:?}");
        assert_eq!(row.depth, Some(res.plan.pipeline_depth()), "{kind:?}");
        assert_eq!(
            row.micro_batch,
            Some(res.plan.max_micro_batch()),
            "{kind:?}"
        );
    }
    let piper_plan = PiperPlanner::with_options(opts)
        .with_unit_ops(8)
        .plan(&model, &cluster, mini_batch)
        .unwrap();
    let piper_report = graphpipe::simulate_plan(&model, &cluster, &piper_plan).unwrap();
    let row = table.row(PlannerKind::Piper).unwrap();
    assert_eq!(row.throughput, Some(piper_report.throughput));
    assert_eq!(row.depth, Some(piper_plan.pipeline_depth()));
    assert_eq!(row.micro_batch, Some(piper_plan.max_micro_batch()));

    // The rendered table carries every planner's label.
    let text = table.render();
    for kind in [
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ] {
        assert!(text.contains(kind.label()), "{text}");
    }
}

/// Every `graphpipe::Error` variant displays a non-empty message, and the
/// wrapping variants chain `source()` to the wrapped subsystem error.
#[test]
fn error_variants_display_and_chain_sources() {
    use graphpipe::exec::ExecError;
    use graphpipe::serve::artifact::ArtifactError;
    use graphpipe::sim::SimError;
    use std::error::Error as StdError;

    let wrapped: Vec<(graphpipe::Error, String)> = vec![
        (
            PlanError::Infeasible("memory".into()).into(),
            PlanError::Infeasible("memory".into()).to_string(),
        ),
        (
            SimError::Deadlock {
                completed: 3,
                total: 9,
            }
            .into(),
            SimError::Deadlock {
                completed: 3,
                total: 9,
            }
            .to_string(),
        ),
        (
            ExecError::WorkerPanicked.into(),
            ExecError::WorkerPanicked.to_string(),
        ),
        (
            ServeError::ServiceStopped.into(),
            ServeError::ServiceStopped.to_string(),
        ),
        (
            ServeError::Overloaded {
                tenant: "acme".into(),
                depth: 7,
            }
            .into(),
            ServeError::Overloaded {
                tenant: "acme".into(),
                depth: 7,
            }
            .to_string(),
        ),
        (
            ServeError::WorkerUnavailable { attempts: 3 }.into(),
            ServeError::WorkerUnavailable { attempts: 3 }.to_string(),
        ),
        (
            ArtifactError::Field("stages").into(),
            ArtifactError::Field("stages").to_string(),
        ),
    ];
    for (err, inner_text) in wrapped {
        assert!(!err.to_string().is_empty(), "{err:?}");
        let source = err
            .source()
            .unwrap_or_else(|| panic!("{err:?} has no source"));
        assert_eq!(source.to_string(), inner_text, "{err:?}");
    }
    // The only source-less variant: a malformed request, nothing wrapped.
    let invalid = graphpipe::Error::Invalid("no model".into());
    assert!(!invalid.to_string().is_empty());
    assert!(invalid.source().is_none());
}

/// A served planner failure surfaces as `Error::Plan` — the same variant
/// the uncached path reports (one validation story).
#[test]
fn serve_path_failures_normalize_to_plan_errors() {
    let session = Session::builder()
        .model(zoo::mmt(&zoo::MmtConfig::tiny()))
        .cluster(Cluster::summit_like(4))
        .mini_batch(32)
        .options(PlanOptions::default().with_micro_batch_candidates(vec![7]))
        .build()
        .unwrap();
    let service = session.serve(1, 4);
    let served = service.plan(PlannerKind::GraphPipe).unwrap_err();
    let local = session.plan(PlannerKind::GraphPipe).unwrap_err();
    assert!(matches!(served, graphpipe::Error::Plan(_)), "{served:?}");
    assert_eq!(served, local);
}

/// `SessionBuilder::sim_options` routes every simulate call through the
/// chosen engine, and the parallel engine's reports are byte-identical to
/// the sequential default — so sessions can flip the knob freely without
/// invalidating golden tables or cached comparisons.
#[test]
fn session_sim_options_parallel_reports_are_identical() {
    let opts = PlanOptions::default().with_max_micro_batches(16);
    let sequential = mmt_session(opts.clone());
    let parallel = Session::builder()
        .model(zoo::mmt(&zoo::MmtConfig::two_branch()))
        .cluster(Cluster::summit_like(4))
        .mini_batch(64)
        .options(opts)
        .sim_options(SimOptions::default().with_parallelism(3))
        .build()
        .expect("well-formed session");
    assert_eq!(parallel.sim_options().parallelism, 3);

    let a = sequential.plan(PlannerKind::GraphPipe).unwrap();
    let b = parallel.plan(PlannerKind::GraphPipe).unwrap();
    let ra = a.simulate().unwrap();
    let rb = b.simulate().unwrap();
    assert_eq!(ra.fingerprint(), rb.fingerprint());
    assert_eq!(ra.timeline, rb.timeline);

    // Explicit per-call options override the session's.
    let rc = a
        .simulate_with(&SimOptions::default().with_parallelism(2))
        .unwrap();
    assert_eq!(ra.fingerprint(), rc.fingerprint());
}
