//! Mutation suite for the static verifier (`gp-verify`).
//!
//! Every committed golden artifact under `tests/goldens/` is decoded into a
//! [`Plan`] and then subjected to a battery of targeted corruptions — one
//! per cataloged invariant family. The verifier must (a) accept each golden
//! plan unmodified and (b) reject every corruption *by name*, i.e. the
//! expected [`Check`] must appear in the report. The corruptions are
//! applied at the layer where they can exist: raw stage lists go through
//! [`verify_stages`], assembled plans through [`verify_plan`], and two
//! byte-level corruptions go through the artifact codec to prove decode
//! errors carry the violation name end to end (DESIGN.md §"Invariant
//! catalog").

use gp_cluster::{Cluster, DeviceRange};
use gp_ir::{zoo, SpModel};
use gp_partition::Plan;
use gp_sched::{InFlightTable, Stage, StageId};
use gp_serve::artifact::decode_plan;
use gp_verify::{verify_plan, verify_stages, verify_strategy, Check, VerifyReport};
use std::path::PathBuf;

/// The same cells `cargo xtask verify-goldens` blesses.
fn cells() -> Vec<(&'static str, SpModel, usize)> {
    vec![
        ("mmt-tiny-4gpu", zoo::mmt(&zoo::MmtConfig::tiny()), 4),
        (
            "candle-uno-tiny-4gpu",
            zoo::candle_uno(&zoo::CandleUnoConfig::tiny()),
            4,
        ),
        ("moe-tiny-4gpu", zoo::moe(&zoo::MoeConfig::tiny()), 4),
        ("mlp-chain-4gpu", zoo::mlp_chain(4, 64), 4),
    ]
}

fn golden(name: &str, model: &SpModel, cluster: &Cluster) -> (String, Plan) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} (re-bless?): {e}", path.display()));
    let (plan, _) = decode_plan(&text, model.graph(), cluster)
        .unwrap_or_else(|e| panic!("{name}: committed golden does not decode: {e}"));
    (text, plan)
}

fn stage_list(plan: &Plan) -> Vec<Stage> {
    plan.stage_graph.stages().cloned().collect()
}

/// Runs `mutate` on every golden cell's stage list and asserts the raw
/// stage verifier names each `expected` check.
fn assert_stage_mutation(expected: &[Check], mutate: impl Fn(&mut Vec<Stage>, &mut u64, &Cluster)) {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (_, plan) = golden(name, &model, &cluster);
        let mut stages = stage_list(&plan);
        let mut mini_batch = plan.stage_graph.mini_batch();
        mutate(&mut stages, &mut mini_batch, &cluster);
        let report = verify_stages(model.graph(), &cluster, &stages, mini_batch);
        for check in expected {
            assert!(
                report.violates(*check),
                "{name}: expected {check} in report, got: {report}"
            );
        }
    }
}

/// Runs `mutate` on every golden cell's decoded plan and asserts the plan
/// verifier names each `expected` check.
fn assert_plan_mutation(expected: &[Check], mutate: impl Fn(&mut Plan)) {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (_, mut plan) = golden(name, &model, &cluster);
        mutate(&mut plan);
        let report = verify_plan(model.graph(), &cluster, &plan);
        for check in expected {
            assert!(
                report.violates(*check),
                "{name}: expected {check} in report, got: {report}"
            );
        }
    }
}

#[test]
fn golden_plans_verify_clean() {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (_, plan) = golden(name, &model, &cluster);
        let report: VerifyReport = verify_strategy(&model, &cluster, &plan);
        assert!(report.is_clean(), "{name}: golden plan rejected: {report}");
    }
}

#[test]
fn zero_mini_batch_is_rejected() {
    assert_stage_mutation(&[Check::MiniBatchPositive], |_, mini_batch, _| {
        *mini_batch = 0;
    });
}

#[test]
fn duplicate_stage_id_is_rejected() {
    assert_stage_mutation(&[Check::StageIdsDense], |stages, _, _| {
        let first = stages[0].id;
        stages.last_mut().unwrap().id = first;
    });
}

#[test]
fn empty_stage_is_rejected() {
    assert_stage_mutation(&[Check::StageNonEmpty], |stages, _, _| {
        stages[0].ops.clear();
    });
}

#[test]
fn non_dividing_micro_batch_is_rejected() {
    assert_stage_mutation(&[Check::MicroBatchDivides], |stages, mini_batch, _| {
        stages[0].micro_batch = *mini_batch + 1;
    });
}

#[test]
fn dropped_op_is_rejected() {
    assert_stage_mutation(&[Check::OpCoverExact], |stages, _, _| {
        stages[0].ops.remove(0);
    });
}

#[test]
fn doubly_assigned_op_is_rejected() {
    assert_stage_mutation(&[Check::OpCoverExact], |stages, _, _| {
        let dup = stages[1].ops[0];
        stages[0].ops.push(dup);
    });
}

/// Moving the sink stage's last op (the graph's sink) into the source
/// stage creates a path that leaves stage 0 and re-enters it — a convexity
/// (C1) violation — and the derived stage DAG acquires a cycle.
#[test]
fn nonconvex_stage_is_rejected() {
    assert_stage_mutation(&[Check::OpConvex, Check::StageAcyclic], |stages, _, _| {
        assert!(
            stages.last().unwrap().ops.len() >= 2,
            "cell must keep the sink stage nonempty after the move"
        );
        let sink_op = stages.last_mut().unwrap().ops.pop().unwrap();
        stages[0].ops.push(sink_op);
    });
}

#[test]
fn out_of_cluster_device_is_rejected() {
    assert_stage_mutation(&[Check::DeviceBounds], |stages, _, cluster| {
        stages[0].devices = DeviceRange::new(cluster.device_count() as u32, 1);
    });
}

#[test]
fn overlapping_devices_are_rejected() {
    assert_stage_mutation(&[Check::DeviceOverlap], |stages, _, _| {
        stages[0].devices = stages[1].devices;
    });
}

/// Widening one stage's device range makes the total device count exceed
/// the cluster's, so the tiling no longer covers the cluster exactly.
#[test]
fn untiled_devices_are_rejected() {
    assert_stage_mutation(&[Check::DeviceCoverage], |stages, _, _| {
        let d = stages[0].devices;
        stages[0].devices = DeviceRange::new(d.first().index() as u32, d.len() as u32 + 1);
    });
}

#[test]
fn tampered_in_flight_table_is_rejected() {
    assert_plan_mutation(&[Check::InFlightConsistent], |plan| {
        let n = plan.stage_graph.len();
        let mut samples: Vec<u64> = (0..n)
            .map(|i| plan.in_flight.samples(StageId(i as u32)))
            .collect();
        samples[0] += plan.stage_graph.stage(StageId(0)).micro_batch;
        plan.in_flight = InFlightTable::from_samples(samples);
    });
}

#[test]
fn reversed_task_order_is_rejected() {
    assert_plan_mutation(&[Check::BackwardAfterForward], |plan| {
        plan.schedule.per_stage[0].tasks.reverse();
    });
}

#[test]
fn dropped_task_is_rejected() {
    assert_plan_mutation(&[Check::TaskMultiset], |plan| {
        plan.schedule.per_stage[0].tasks.pop();
    });
}

#[test]
fn wrong_warmup_is_rejected() {
    assert_plan_mutation(&[Check::WarmupConsistent], |plan| {
        plan.schedule.per_stage[0].warmup += 1;
    });
}

#[test]
fn skewed_throughput_estimate_is_rejected() {
    assert_plan_mutation(&[Check::EstimateConsistent], |plan| {
        plan.bottleneck_tps *= 1.5;
    });
}

#[test]
fn skewed_memory_estimate_is_rejected() {
    assert_plan_mutation(&[Check::EstimateConsistent], |plan| {
        plan.peak_memory_bytes += 1;
    });
}

#[test]
fn non_finite_estimate_is_rejected() {
    assert_plan_mutation(&[Check::EstimateFinite], |plan| {
        plan.bottleneck_tps = f64::NAN;
    });
}

/// Byte-level corruption: the codec's decode error must carry the violated
/// invariant's catalog name, not a generic parse failure.
#[test]
fn corrupted_artifact_bytes_name_the_invariant() {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (text, _) = golden(name, &model, &cluster);

        let zeroed = text.replace("\"mini_batch\":32", "\"mini_batch\":0");
        assert_ne!(zeroed, text, "{name}: mini_batch field not found");
        let err = decode_plan(&zeroed, model.graph(), &cluster)
            .expect_err("zero mini-batch must not decode");
        assert!(
            err.to_string().contains("mini-batch-positive"),
            "{name}: error does not name the invariant: {err}"
        );

        let shifted = text.replacen("\"dev_start\":0", "\"dev_start\":1", 1);
        assert_ne!(shifted, text, "{name}: dev_start field not found");
        let err = decode_plan(&shifted, model.graph(), &cluster)
            .expect_err("overlapping devices must not decode");
        assert!(
            err.to_string().contains("device-overlap"),
            "{name}: error does not name the invariant: {err}"
        );
    }
}
