//! Mutation suite for the static verifier (`gp-verify`).
//!
//! Every committed golden artifact under `tests/goldens/` is decoded into a
//! [`Plan`] and then subjected to a battery of targeted corruptions — one
//! per cataloged invariant family. The verifier must (a) accept each golden
//! plan unmodified and (b) reject every corruption *by name*, i.e. the
//! expected [`Check`] must appear in the report. The corruptions are
//! applied at the layer where they can exist: raw stage lists go through
//! [`verify_stages`], assembled plans through [`verify_plan`], and two
//! byte-level corruptions go through the artifact codec to prove decode
//! errors carry the violation name end to end (DESIGN.md §"Invariant
//! catalog").

use gp_cluster::{Cluster, DeviceRange};
use gp_ir::{zoo, PlanPath, SpBlock, SpModel};
use gp_partition::Plan;
use gp_sched::{InFlightTable, Stage, StageId};
use gp_serve::artifact::decode_plan;
use gp_verify::{verify_plan, verify_stages, verify_strategy, Check, VerifyReport};
use std::path::PathBuf;

/// The same cells `cargo xtask verify-goldens` blesses.
fn cells() -> Vec<(&'static str, SpModel, usize)> {
    vec![
        ("mmt-tiny-4gpu", zoo::mmt(&zoo::MmtConfig::tiny()), 4),
        (
            "candle-uno-tiny-4gpu",
            zoo::candle_uno(&zoo::CandleUnoConfig::tiny()),
            4,
        ),
        ("moe-tiny-4gpu", zoo::moe(&zoo::MoeConfig::tiny()), 4),
        ("mlp-chain-4gpu", zoo::mlp_chain(4, 64), 4),
        (
            "gnn-pipe-tiny-4gpu",
            zoo::gnn_pipe(&zoo::GnnPipeConfig::tiny()),
            4,
        ),
        ("gpt2-tiny-4gpu", zoo::gpt2(&zoo::Gpt2Config::tiny()), 4),
    ]
}

fn golden(name: &str, model: &SpModel, cluster: &Cluster) -> (String, Plan) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} (re-bless?): {e}", path.display()));
    let (plan, _) = decode_plan(&text, model.graph(), cluster)
        .unwrap_or_else(|e| panic!("{name}: committed golden does not decode: {e}"));
    (text, plan)
}

fn stage_list(plan: &Plan) -> Vec<Stage> {
    plan.stage_graph.stages().cloned().collect()
}

/// Runs `mutate` on every golden cell's stage list and asserts the raw
/// stage verifier names each `expected` check.
fn assert_stage_mutation(expected: &[Check], mutate: impl Fn(&mut Vec<Stage>, &mut u64, &Cluster)) {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (_, plan) = golden(name, &model, &cluster);
        let mut stages = stage_list(&plan);
        let mut mini_batch = plan.stage_graph.mini_batch();
        mutate(&mut stages, &mut mini_batch, &cluster);
        let report = verify_stages(model.graph(), &cluster, &stages, mini_batch);
        for check in expected {
            assert!(
                report.violates(*check),
                "{name}: expected {check} in report, got: {report}"
            );
        }
    }
}

/// Runs `mutate` on every golden cell's decoded plan and asserts the plan
/// verifier names each `expected` check.
fn assert_plan_mutation(expected: &[Check], mutate: impl Fn(&mut Plan)) {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (_, mut plan) = golden(name, &model, &cluster);
        mutate(&mut plan);
        let report = verify_plan(model.graph(), &cluster, &plan);
        for check in expected {
            assert!(
                report.violates(*check),
                "{name}: expected {check} in report, got: {report}"
            );
        }
    }
}

#[test]
fn golden_plans_verify_clean() {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (_, plan) = golden(name, &model, &cluster);
        let report: VerifyReport = verify_strategy(&model, &cluster, &plan);
        assert!(report.is_clean(), "{name}: golden plan rejected: {report}");
    }
}

#[test]
fn zero_mini_batch_is_rejected() {
    assert_stage_mutation(&[Check::MiniBatchPositive], |_, mini_batch, _| {
        *mini_batch = 0;
    });
}

#[test]
fn duplicate_stage_id_is_rejected() {
    assert_stage_mutation(&[Check::StageIdsDense], |stages, _, _| {
        let first = stages[0].id;
        stages.last_mut().unwrap().id = first;
    });
}

#[test]
fn empty_stage_is_rejected() {
    assert_stage_mutation(&[Check::StageNonEmpty], |stages, _, _| {
        stages[0].ops.clear();
    });
}

#[test]
fn non_dividing_micro_batch_is_rejected() {
    assert_stage_mutation(&[Check::MicroBatchDivides], |stages, mini_batch, _| {
        stages[0].micro_batch = *mini_batch + 1;
    });
}

#[test]
fn dropped_op_is_rejected() {
    assert_stage_mutation(&[Check::OpCoverExact], |stages, _, _| {
        stages[0].ops.remove(0);
    });
}

#[test]
fn doubly_assigned_op_is_rejected() {
    assert_stage_mutation(&[Check::OpCoverExact], |stages, _, _| {
        let dup = stages[1].ops[0];
        stages[0].ops.push(dup);
    });
}

/// Moving the sink stage's last op (the graph's sink) into the source
/// stage creates a path that leaves stage 0 and re-enters it — a convexity
/// (C1) violation — and the derived stage DAG acquires a cycle.
#[test]
fn nonconvex_stage_is_rejected() {
    assert_stage_mutation(&[Check::OpConvex, Check::StageAcyclic], |stages, _, _| {
        assert!(
            stages.last().unwrap().ops.len() >= 2,
            "cell must keep the sink stage nonempty after the move"
        );
        let sink_op = stages.last_mut().unwrap().ops.pop().unwrap();
        stages[0].ops.push(sink_op);
    });
}

#[test]
fn out_of_cluster_device_is_rejected() {
    assert_stage_mutation(&[Check::DeviceBounds], |stages, _, cluster| {
        stages[0].devices = DeviceRange::new(cluster.device_count() as u32, 1);
    });
}

#[test]
fn overlapping_devices_are_rejected() {
    assert_stage_mutation(&[Check::DeviceOverlap], |stages, _, _| {
        stages[0].devices = stages[1].devices;
    });
}

/// Widening one stage's device range makes the total device count exceed
/// the cluster's, so the tiling no longer covers the cluster exactly.
#[test]
fn untiled_devices_are_rejected() {
    assert_stage_mutation(&[Check::DeviceCoverage], |stages, _, _| {
        let d = stages[0].devices;
        stages[0].devices = DeviceRange::new(d.first().index() as u32, d.len() as u32 + 1);
    });
}

#[test]
fn tampered_in_flight_table_is_rejected() {
    assert_plan_mutation(&[Check::InFlightConsistent], |plan| {
        let n = plan.stage_graph.len();
        let mut samples: Vec<u64> = (0..n)
            .map(|i| plan.in_flight.samples(StageId(i as u32)))
            .collect();
        samples[0] += plan.stage_graph.stage(StageId(0)).micro_batch;
        plan.in_flight = InFlightTable::from_samples(samples);
    });
}

#[test]
fn reversed_task_order_is_rejected() {
    assert_plan_mutation(&[Check::BackwardAfterForward], |plan| {
        plan.schedule.per_stage[0].tasks.reverse();
    });
}

#[test]
fn dropped_task_is_rejected() {
    assert_plan_mutation(&[Check::TaskMultiset], |plan| {
        plan.schedule.per_stage[0].tasks.pop();
    });
}

#[test]
fn wrong_warmup_is_rejected() {
    assert_plan_mutation(&[Check::WarmupConsistent], |plan| {
        plan.schedule.per_stage[0].warmup += 1;
    });
}

#[test]
fn skewed_throughput_estimate_is_rejected() {
    assert_plan_mutation(&[Check::EstimateConsistent], |plan| {
        plan.bottleneck_tps *= 1.5;
    });
}

#[test]
fn skewed_memory_estimate_is_rejected() {
    assert_plan_mutation(&[Check::EstimateConsistent], |plan| {
        plan.peak_memory_bytes += 1;
    });
}

#[test]
fn non_finite_estimate_is_rejected() {
    assert_plan_mutation(&[Check::EstimateFinite], |plan| {
        plan.bottleneck_tps = f64::NAN;
    });
}

/// The SP-ized golden cell — the one whose model runs the DAG fallback
/// ladder ([`gp_ir::PlanPath::SpIzed`]) — with its decoded plan. The
/// SP-tree mutations below corrupt *this* model's tree six ways and
/// require the strategy verifier to reject each by catalog name.
fn sp_ized_cell() -> (SpModel, Cluster, Plan) {
    let model = zoo::gnn_pipe(&zoo::GnnPipeConfig::tiny());
    let cluster = Cluster::summit_like(4);
    let (_, plan) = golden("gnn-pipe-tiny-4gpu", &model, &cluster);
    assert!(
        matches!(model.path(), PlanPath::SpIzed { .. }),
        "the gnn-pipe cell must exercise the SP-ization rung"
    );
    (model, cluster, plan)
}

/// Rebuilds the SP-ized cell's model with `mutate` applied to its tree
/// (bypassing validation via [`SpModel::new_unchecked`]) and asserts the
/// strategy verifier names `expected`.
fn assert_tree_mutation(expected: Check, mutate: impl FnOnce(&mut SpBlock)) {
    let (model, cluster, plan) = sp_ized_cell();
    let mut root = model.root().clone();
    mutate(&mut root);
    let corrupt = SpModel::new_unchecked(model.name(), model.graph().clone(), root, model.path());
    let report = verify_strategy(&corrupt, &cluster, &plan);
    assert!(
        report.violates(expected),
        "expected {expected} in report, got: {report}"
    );
}

/// Returns the leaves of a tree in series order.
fn leaves(block: &SpBlock) -> Vec<gp_ir::OpId> {
    let mut model_order = Vec::new();
    fn walk(block: &SpBlock, out: &mut Vec<gp_ir::OpId>) {
        match block {
            SpBlock::Leaf(id) => out.push(*id),
            SpBlock::Chain(items) | SpBlock::Branches(items) => {
                items.iter().for_each(|b| walk(b, out))
            }
        }
    }
    walk(block, &mut model_order);
    model_order
}

#[test]
fn dropped_split_node_is_rejected() {
    // Removing the first child of the root drops every operator under it
    // from the tree's coverage.
    assert_tree_mutation(Check::SpCoverExact, |root| match root {
        SpBlock::Chain(items) | SpBlock::Branches(items) => {
            items.remove(0);
        }
        SpBlock::Leaf(_) => panic!("the SP-ized cell's tree cannot be a single leaf"),
    });
}

#[test]
fn duplicated_leaf_is_rejected() {
    assert_tree_mutation(Check::SpCoverExact, |root| {
        let dup = SpBlock::Leaf(leaves(root)[0]);
        match root {
            SpBlock::Chain(items) | SpBlock::Branches(items) => items.push(dup),
            SpBlock::Leaf(_) => unreachable!(),
        }
    });
}

#[test]
fn reordered_chain_is_rejected() {
    // Reversing the series order runs the sink before the source.
    assert_tree_mutation(Check::SpTopoOrder, |root| {
        let reversed: Vec<SpBlock> = leaves(root).into_iter().rev().map(SpBlock::Leaf).collect();
        *root = SpBlock::Chain(reversed);
    });
}

#[test]
fn cross_branch_edge_is_rejected() {
    // Flattening the tree into one big `Branches` keeps coverage exact and
    // (leaves stay in series order) the linearization topological — but
    // every data edge now crosses parallel branches, exactly the corruption
    // `sp-edge-cover` exists to catch.
    assert_tree_mutation(Check::SpEdgeCover, |root| {
        let flat: Vec<SpBlock> = leaves(root).into_iter().map(SpBlock::Leaf).collect();
        *root = SpBlock::Branches(flat);
    });
}

#[test]
fn stale_distortion_is_rejected() {
    let (model, cluster, plan) = sp_ized_cell();
    let PlanPath::SpIzed { distortion } = model.path() else {
        unreachable!()
    };
    let stale = PlanPath::SpIzed {
        distortion: distortion + 1,
    };
    let corrupt = SpModel::new_unchecked(
        model.name(),
        model.graph().clone(),
        model.root().clone(),
        stale,
    );
    let report = verify_strategy(&corrupt, &cluster, &plan);
    assert!(
        report.violates(Check::DistortionExact),
        "expected distortion-exact in report, got: {report}"
    );
}

#[test]
fn mismatched_plan_path_is_rejected() {
    let (model, cluster, mut plan) = sp_ized_cell();
    plan.path = PlanPath::ExactSp;
    let report = verify_strategy(&model, &cluster, &plan);
    assert!(
        report.violates(Check::PlanPathConsistent),
        "expected plan-path-consistent in report, got: {report}"
    );
}

#[test]
fn insane_cluster_unit_count_is_rejected() {
    let (model, cluster, mut plan) = sp_ized_cell();
    let zero_units = PlanPath::Clustered { units: 0 };
    plan.path = zero_units;
    let corrupt = SpModel::new_unchecked(
        model.name(),
        model.graph().clone(),
        model.root().clone(),
        zero_units,
    );
    let report = verify_strategy(&corrupt, &cluster, &plan);
    assert!(
        report.violates(Check::PlanPathConsistent),
        "expected plan-path-consistent in report, got: {report}"
    );
}

/// Byte-level corruption: the codec's decode error must carry the violated
/// invariant's catalog name, not a generic parse failure.
#[test]
fn corrupted_artifact_bytes_name_the_invariant() {
    for (name, model, devices) in cells() {
        let cluster = Cluster::summit_like(devices);
        let (text, _) = golden(name, &model, &cluster);

        let zeroed = text.replace("\"mini_batch\":32", "\"mini_batch\":0");
        assert_ne!(zeroed, text, "{name}: mini_batch field not found");
        let err = decode_plan(&zeroed, model.graph(), &cluster)
            .expect_err("zero mini-batch must not decode");
        assert!(
            err.to_string().contains("mini-batch-positive"),
            "{name}: error does not name the invariant: {err}"
        );

        let shifted = text.replacen("\"dev_start\":0", "\"dev_start\":1", 1);
        assert_ne!(shifted, text, "{name}: dev_start field not found");
        let err = decode_plan(&shifted, model.graph(), &cluster)
            .expect_err("overlapping devices must not decode");
        assert!(
            err.to_string().contains("device-overlap"),
            "{name}: error does not name the invariant: {err}"
        );
    }
}
