//! Property: every plan `Session::plan` produces — any zoo model, any
//! cluster size, any planner — passes the full strategy-level static
//! verification (`verify_strategy`), i.e. the planners only ever emit
//! strategies satisfying the whole invariant catalog (DESIGN.md
//! §"Invariant catalog").
//!
//! `Session::plan` already runs this verification internally and would
//! return `Error::Verify`; the test still re-verifies the returned plan
//! explicitly so a regression in *either* the wiring or the checks fails
//! loudly, and so the report text is printed when something breaks.

use graphpipe::prelude::*;
use graphpipe::verify::verify_strategy;

fn zoo_cells() -> Vec<(&'static str, SpModel)> {
    vec![
        ("mmt-tiny", zoo::mmt(&zoo::MmtConfig::tiny())),
        ("mmt-two-branch", zoo::mmt(&zoo::MmtConfig::two_branch())),
        ("dlrm-tiny", zoo::dlrm(&zoo::DlrmConfig::tiny())),
        (
            "candle-uno-tiny",
            zoo::candle_uno(&zoo::CandleUnoConfig::tiny()),
        ),
        ("moe-tiny", zoo::moe(&zoo::MoeConfig::tiny())),
        ("mlp-chain-8x32", zoo::mlp_chain(8, 32)),
    ]
}

fn planners() -> [PlannerKind; 3] {
    [
        PlannerKind::GraphPipe,
        PlannerKind::PipeDream,
        PlannerKind::Piper,
    ]
}

#[test]
fn every_session_plan_passes_verify_strategy() {
    for (name, model) in zoo_cells() {
        for devices in [8usize, 16, 32] {
            let session = Session::builder()
                .model(model.clone())
                .cluster(Cluster::summit_like(devices))
                .mini_batch(64)
                .options(PlanOptions::default().with_max_micro_batches(32))
                .build()
                .expect("well-formed session");
            for kind in planners() {
                let strategy = match session.plan(kind) {
                    Ok(s) => s,
                    // Some (model, cluster) cells are over-sharded for a
                    // baseline planner (more devices than partitionable
                    // stages); "no feasible plan" is not a verifier defect.
                    Err(Error::Plan(_)) => continue,
                    Err(e) => panic!("{name}@{devices} {}: {e}", kind.label()),
                };
                let report = verify_strategy(session.model(), session.cluster(), strategy.plan());
                assert!(
                    report.is_clean(),
                    "{name}@{devices} {}: planner emitted an invalid strategy: {report}",
                    kind.label()
                );
            }
        }
    }
}
