//! Offline stand-in for `criterion` (see `third_party/README.md`).
//!
//! A minimal timing harness with criterion's macro/API shape:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`criterion_group!`] and [`criterion_main!`] (benches therefore keep
//! `harness = false`). Each benchmark is timed over a fixed number of
//! batches and reported as mean ns/iter on stdout — no statistics, plots,
//! or baselines, but `cargo bench` runs and reports real numbers.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count to a short wall budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a single-shot duration.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1) as f64;
        // Aim for ~50ms of measurement, capped to keep planners cheap.
        let iters = ((5e7 / once) as u64).clamp(1, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group; methods mirror criterion's builder surface.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark under this group's namespace.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.ns_per_iter);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn report(name: &str, ns: f64) {
    if ns >= 1e6 {
        println!("bench {name:<40} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("bench {name:<40} {:>12.3} us/iter", ns / 1e3);
    } else {
        println!("bench {name:<40} {:>12.1} ns/iter", ns);
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
