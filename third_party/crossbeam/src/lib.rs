//! Offline stand-in for `crossbeam` (see `third_party/README.md`).
//!
//! Provides `crossbeam::channel::unbounded` with crossbeam's key property
//! that `std::sync::mpsc` lacks: both [`channel::Sender`] and
//! [`channel::Receiver`] are `Clone + Send + Sync`, so they can sit in an
//! `Arc<HashMap<...>>` shared by every worker thread. Built on a
//! `Mutex<VecDeque>` + `Condvar`; disconnection is tracked by endpoint
//! reference counts, exactly like the real crate's semantics.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloning adds a consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues the next value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
