//! Offline stand-in for `crossbeam` (see `third_party/README.md`).
//!
//! Provides `crossbeam::channel::unbounded` with crossbeam's key property
//! that `std::sync::mpsc` lacks: both [`channel::Sender`] and
//! [`channel::Receiver`] are `Clone + Send + Sync`, so they can sit in an
//! `Arc<HashMap<...>>` shared by every worker thread. Built on a
//! `Mutex<VecDeque>` + `Condvar`; disconnection is tracked by endpoint
//! reference counts, exactly like the real crate's semantics.

#![forbid(unsafe_code)]

/// Scoped threads (the `crossbeam::thread` / `crossbeam-utils` surface),
/// built on `std::thread::scope`. Spawned closures receive a `&Scope` so
/// they can spawn further scoped threads, exactly like the real crate.
///
/// Divergence from the real crate: `scope` relies on std's propagation of
/// child panics (it panics at scope exit instead of returning `Err`), so
/// the `Result` it returns is always `Ok` — matching how crossbeam users
/// `.unwrap()` it anyway.
pub mod thread {
    /// Result of a scope: the closure's value (see module divergence note).
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle for spawning threads that may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owns the join side of one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its value (or its panic
        /// payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads may borrow local data; all
    /// spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let counter = AtomicUsize::new(0);
            let out = super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst)))
                    .collect();
                let mut joined = 0;
                for h in handles {
                    h.join().unwrap();
                    joined += 1;
                }
                joined
            })
            .unwrap();
            assert_eq!(out, 4);
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn nested_spawn_works() {
            let v = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(v, 42);
        }
    }
}

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloning adds a consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues the next value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
