//! Offline stand-in for `parking_lot` (see `third_party/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly. Like the real parking_lot, locks do
//! not poison: a panic in one holder is recovered via `into_inner()` and
//! later callers simply acquire the lock (the workspace's runtime joins
//! worker threads and surfaces their panics itself).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's infallible `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock with parking_lot's infallible signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}
