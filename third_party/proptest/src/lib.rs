//! Offline stand-in for `proptest` (see `third_party/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `pat in strategy` arguments, integer range and
//! [`sample::select`] strategies, [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded by the test name), so failures reproduce exactly
//! in CI; there is no shrinking — a failing case panics with the values
//! bound by the harness visible in the assert message.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case-generation RNG: the sibling `rand` stub's
/// generator, seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG seeded from a test name, stable across runs and platforms.
    pub fn from_name(name: &str) -> Self {
        use rand::SeedableRng;
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy` far enough
/// for the harness macro).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * u
    }
}

/// Strategies over explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy yielding a uniformly chosen element of `values`.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Uniform choice among `values` (mirrors `prop::sample::select`).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategies over collections of generated values.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy yielding a `Vec` of values drawn from `element`, with a
    /// length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element`-generated values with length in `len`
    /// (mirrors `prop::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty strategy range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Just` strategy: always the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Alias namespace mirroring the `prop::...` paths of the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Property assertion; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The property-test harness macro.
///
/// Expands each `fn name(arg in strategy, ...) { body }` into a plain
/// `#[test]`-style function that draws `config.cases` tuples from the
/// strategies and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __values = format!(
                    concat!("case {} of ", stringify!($name), ": ", $(stringify!($arg), " = {:?} "),+),
                    __case, $(&$arg),+
                );
                let __run = || $body;
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!("proptest failure ({__values})");
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 1usize..5, y in 0u32..3) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn select_picks_members(w in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2usize, 4, 8].contains(&w));
        }

        #[test]
        fn vecs_of_tuples_respect_bounds(
            v in prop::collection::vec((0usize..7, 1u32..3), 2..5),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 7);
                prop_assert!((1..3).contains(&b));
            }
        }
    }
}
