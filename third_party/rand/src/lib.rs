//! Offline stand-in for `rand` (see `third_party/README.md`).
//!
//! Implements the slice of the rand 0.9 API the workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], uniform
//! [`distr::StandardUniform`] sampling, and [`RngExt::random_range`] — on
//! top of the SplitMix64 generator. Deterministic across platforms, which
//! is all the tests require (seeded synthetic data and init).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator interface (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T>(&mut self) -> T
    where
        distr::StandardUniform: distr::Distribution<T>,
        Self: Sized,
    {
        distr::Distribution::sample(&distr::StandardUniform, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range sampling extension (mirrors the `random_range` surface).
pub trait RngExt: RngCore {
    /// A uniformly distributed value in `range` (half-open).
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Copy {
    /// Uniform draw from `range`; panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // i128 holds every value and span of the <=64-bit types
                // implemented here, so signed ranges cannot overflow.
                let span = (range.end as i128) - (range.start as i128);
                // Modulo bias is negligible for the small spans used here.
                let draw = (rng.next_u64() as i128) % span;
                (range.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = unit_f32(rng.next_u64());
        range.start + (range.end - range.start) * u
    }
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        range.start + (range.end - range.start) * u
    }
}

fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as f32) / (1u64 << 24) as f32
}

fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) / (1u64 << 53) as f64
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Passes no statistical test batteries but is plenty for seeded test
    /// data; the interface matches, so swapping the real crate back in is
    /// transparent.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Burn a few outputs so nearby seeds decorrelate.
            for _ in 0..4 {
                rng.next_u64();
            }
            rng
        }
    }
}

/// Distributions (mirrors `rand::distr`).
pub mod distr {
    use super::{unit_f32, unit_f64, RngCore};

    /// A distribution over `T` (mirrors `rand::distr::Distribution`).
    pub trait Distribution<T> {
        /// One draw from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution: floats in `[0, 1)`, integers over
    /// their whole domain.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardUniform;

    impl Distribution<f32> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl Distribution<f64> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<u32> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.random_range(0usize..17);
            assert!(x < 17);
            assert_eq!(x, b.random_range(0usize..17));
        }
        let f = a.random_range(-1.0f32..1.0);
        assert!((-1.0..1.0).contains(&f));
    }

    #[test]
    fn full_width_signed_ranges_do_not_overflow() {
        // Regression: spans wider than the target type's MAX used to wrap
        // during `start + draw` when the draw truncated negative.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(i8::MIN..i8::MAX);
            assert!((i8::MIN..i8::MAX).contains(&x));
            let y = rng.random_range(i64::MIN..i64::MAX);
            assert!((i64::MIN..i64::MAX).contains(&y));
            let z = rng.random_range(0u64..u64::MAX);
            assert!(z < u64::MAX);
        }
    }
}
