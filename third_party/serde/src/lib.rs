//! Offline stand-in for `serde` (see `third_party/README.md`).
//!
//! Provides the `Serialize` / `Deserialize` marker traits plus the derive
//! macros (via the sibling `serde_derive` stub). This is enough for the
//! workspace, which derives the traits on strategy types and asserts the
//! bounds at the type level but never serializes to a concrete format.
//! Swap these path deps for the real crates-io packages once a registry
//! is reachable; no source changes will be needed.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Mirrors `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    ()
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T: Deserialize<'de>, S: Default> Deserialize<'de> for std::collections::HashSet<T, S> {}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}

macro_rules! impl_tuples {
    ($(($($n:ident),+)),* $(,)?) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {}
    )*};
}

impl_tuples!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

/// Mirrors the `serde::ser` module far enough for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors the `serde::de` module far enough for path compatibility.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
