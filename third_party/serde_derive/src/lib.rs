//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace vendors a minimal `serde` facade (see
//! `third_party/README.md`); this crate provides the matching
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros. The derives
//! emit marker-trait impls only — enough for type-level `T: Serialize`
//! bounds; actual wire formats are out of scope until a real registry is
//! reachable.
//!
//! The input is scanned token-by-token (no `syn`): the type name is the
//! identifier following the first top-level `struct` / `enum` / `union`
//! keyword, and generic parameters after it are captured verbatim so the
//! impl can mirror them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Name plus raw generic parameter text (e.g. `<'a, T>`), if any.
struct TypeHead {
    name: String,
    generics: String,
    generic_idents: Vec<String>,
}

fn parse_type_head(input: TokenStream) -> TypeHead {
    let mut iter = input.into_iter().peekable();
    // Skip attributes, doc comments, visibility, and anything else until the
    // `struct`/`enum`/`union` keyword.
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    // Capture `<...>` generics if present (balanced on </>).
    let mut generics = String::new();
    let mut generic_idents = Vec::new();
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        let mut expect_param = true;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    generics.push('<');
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    generics.push('>');
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) => {
                    if p.as_char() == ',' && depth == 1 {
                        expect_param = true;
                    }
                    generics.push(p.as_char());
                }
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    expect_param = false;
                    generic_idents.push(id.to_string());
                    generics.push_str(&id.to_string());
                    generics.push(' ');
                }
                TokenTree::Literal(l) => {
                    generics.push_str(&l.to_string());
                    generics.push(' ');
                }
                TokenTree::Ident(id) => {
                    generics.push_str(&id.to_string());
                    generics.push(' ');
                }
                TokenTree::Group(g) => {
                    debug_assert!(g.delimiter() != Delimiter::None);
                    generics.push_str(&g.to_string());
                }
            }
        }
    }
    TypeHead {
        name,
        generics,
        generic_idents,
    }
}

fn impl_for(head: &TypeHead, trait_path: &str, trait_lifetime: Option<&str>) -> TokenStream {
    // `impl<'de, T> Trait<'de> for Name<T> where T: Trait` — the where
    // bounds keep generic containers honest without needing field parsing.
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = trait_lifetime {
        impl_params.push(lt.to_string());
    }
    if !head.generics.is_empty() {
        let inner = head
            .generics
            .trim_start_matches('<')
            .trim_end_matches('>')
            .trim();
        if !inner.is_empty() {
            impl_params.push(inner.to_string());
        }
    }
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_args = if head.generic_idents.is_empty() {
        String::new()
    } else {
        format!("<{}>", head.generic_idents.join(", "))
    };
    let trait_args = trait_lifetime
        .map(|lt| format!("<{lt}>"))
        .unwrap_or_default();
    let code = format!(
        "#[automatically_derived] impl{impl_generics} {trait_path}{trait_args} for {name}{ty_args} {{}}",
        name = head.name,
    );
    code.parse().expect("derive: generated impl must parse")
}

/// Minimal `#[derive(Serialize)]`: emits `impl ::serde::Serialize for T`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let head = parse_type_head(input);
    impl_for(&head, "::serde::Serialize", None)
}

/// Minimal `#[derive(Deserialize)]`: emits `impl<'de> ::serde::Deserialize<'de> for T`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let head = parse_type_head(input);
    impl_for(&head, "::serde::Deserialize", Some("'de"))
}
